// Experiment E4 — Figure 3 / Table 1: transient oscillation from message
// delays, in the event-driven (operational) simulator.
//
// Table 1's exact rows did not survive in the source text; this bench
// regenerates its *shape*: a scripted sequence of E-BGP injection times and
// per-session delays under which the standard protocol flaps through
// intermediate best routes before settling — and settles into DIFFERENT
// stable solutions depending on the script — while the modified protocol
// reaches the same fixed point under every script with bounded flapping.

#include "bench_common.hpp"

#include <map>
#include <memory>

#include "core/fixed_point.hpp"
#include "engine/event_engine.hpp"
#include "topo/figures.hpp"
#include "util/rng.hpp"

namespace {

using namespace ibgp;

struct Scenario {
  const char* name;
  // (exit name, injection time); withdraw entries use negative time encoding
  // handled below.
  std::vector<std::pair<const char*, engine::SimTime>> injections;
  std::vector<std::pair<const char*, engine::SimTime>> withdrawals;
};

std::vector<Scenario> scenarios() {
  return {
      {"all-at-once", {{"r1", 0}, {"r2", 0}, {"r3", 0}, {"r4", 0}, {"r5", 0}, {"r6", 0}}, {}},
      {"cheap-routes-late",
       {{"r1", 0}, {"r2", 0}, {"r3", 0}, {"r5", 0}, {"r4", 100}, {"r6", 100}},
       {}},
      {"med0-pair-late",
       {{"r1", 0}, {"r2", 0}, {"r4", 0}, {"r6", 0}, {"r3", 100}, {"r5", 100}},
       {}},
      {"churn-and-withdraw",
       {{"r1", 0}, {"r2", 0}, {"r3", 0}, {"r5", 0}, {"r4", 50}, {"r6", 50}},
       {{"r3", 120}, {"r5", 180}}},
  };
}

void run_scenario(const core::Instance& inst, core::ProtocolKind kind,
                  const Scenario& scenario, bool print) {
  engine::EventEngine engine(inst, kind);
  for (const auto& [name, when] : scenario.injections) {
    engine.inject_exit(inst.exits().find_by_name(name), when);
  }
  for (const auto& [name, when] : scenario.withdrawals) {
    engine.withdraw_exit(inst.exits().find_by_name(name), when);
  }
  const auto result = engine.run(500000);
  if (print) {
    std::printf("  %-9s | %-18s | %-9s | flaps=%-3zu msgs=%-4zu | B->%s C->%s\n",
                core::protocol_name(kind), scenario.name,
                result.converged ? "converged" : "NO-DRAIN", result.best_flips,
                result.updates_sent,
                result.final_best[inst.find_node("B")] == kNoPath
                    ? "-"
                    : inst.exits()[result.final_best[inst.find_node("B")]].name.c_str(),
                result.final_best[inst.find_node("C")] == kNoPath
                    ? "-"
                    : inst.exits()[result.final_best[inst.find_node("C")]].name.c_str());
  }
}

void report() {
  bench::heading("E4 / Figure 3 + Table 1: delay-induced transient oscillation",
                 "message timing selects among stable solutions and causes "
                 "best-route flapping for standard I-BGP; the modified "
                 "protocol's outcome is timing-independent");
  const auto inst = topo::fig3();

  std::printf("  %-9s | %-18s | verdict   | churn            | final picks\n", "protocol",
              "scenario");
  std::printf("  ----------+--------------------+-----------+------------------+-----------\n");
  for (const auto kind : {core::ProtocolKind::kStandard, core::ProtocolKind::kModified}) {
    for (const auto& scenario : scenarios()) {
      run_scenario(inst, kind, scenario, /*print=*/true);
    }
  }

  // Distribution over random delays: how often does each stable solution win?
  std::printf("\nfinal-solution distribution over 500 random delay seeds (standard):\n");
  std::map<std::string, int> histogram;
  for (std::uint64_t seed = 1; seed <= 500; ++seed) {
    auto rng = std::make_shared<util::Xoshiro256>(seed);
    engine::EventEngine engine(inst, core::ProtocolKind::kStandard,
                               [rng](NodeId, NodeId, std::uint64_t) -> engine::SimTime {
                                 return 1 + rng->below(30);
                               });
    for (PathId p = 0; p < inst.exits().size(); ++p) {
      engine.inject_exit(p, rng->below(60));
    }
    const auto result = engine.run(500000);
    if (!result.converged) {
      ++histogram["no-drain"];
      continue;
    }
    const auto b = result.final_best[inst.find_node("B")];
    const auto c = result.final_best[inst.find_node("C")];
    ++histogram["B->" + inst.exits()[b].name + " C->" + inst.exits()[c].name];
  }
  for (const auto& [key, count] : histogram) {
    std::printf("  %-20s : %d\n", key.c_str(), count);
  }

  std::printf("\nmodified protocol over the same 500 seeds: ");
  std::size_t distinct = 0;
  {
    std::map<std::vector<PathId>, int> outcomes;
    for (std::uint64_t seed = 1; seed <= 500; ++seed) {
      auto rng = std::make_shared<util::Xoshiro256>(seed);
      engine::EventEngine engine(inst, core::ProtocolKind::kModified,
                                 [rng](NodeId, NodeId, std::uint64_t) -> engine::SimTime {
                                   return 1 + rng->below(30);
                                 });
      for (PathId p = 0; p < inst.exits().size(); ++p) {
        engine.inject_exit(p, rng->below(60));
      }
      const auto result = engine.run(500000);
      if (result.converged) ++outcomes[result.final_best];
    }
    distinct = outcomes.size();
  }
  std::printf("%zu distinct outcome(s) — %s\n", distinct,
              distinct == 1 ? "timing-independent, as proven" : "UNEXPECTED");
}

void BM_EventRunStandard(benchmark::State& state) {
  const auto inst = topo::fig3();
  for (auto _ : state) {
    engine::EventEngine engine(inst, core::ProtocolKind::kStandard);
    engine.inject_all_exits();
    auto result = engine.run(500000);
    benchmark::DoNotOptimize(result.deliveries);
  }
}
BENCHMARK(BM_EventRunStandard);

void BM_EventRunModified(benchmark::State& state) {
  const auto inst = topo::fig3();
  for (auto _ : state) {
    engine::EventEngine engine(inst, core::ProtocolKind::kModified);
    engine.inject_all_exits();
    auto result = engine.run(500000);
    benchmark::DoNotOptimize(result.deliveries);
  }
}
BENCHMARK(BM_EventRunModified);

}  // namespace

IBGP_BENCH_MAIN(report)
