// E18 — counterexample-corpus replay gate.
//
// Replays every checked-in counterexample (examples/data/corpus/*.topo)
// under all three protocols and both deterministic schedules, and compares
// against the signatures recorded when the entry was minimized.  Two hard
// failures (exit 1):
//   * the modified protocol oscillates on ANY entry — that would falsify
//     the paper's Theorem 2 (Section 7), the central positive result;
//   * a replay no longer reproduces an entry's recorded signature — the
//     corpus is a regression suite, and a silent drift in the engines is
//     exactly what it exists to catch.
// The replay also runs serial and parallel and diffs the index-ordered
// fingerprints, so the E18 rows double as a --jobs determinism check.

#include <cstdlib>

#include "bench_common.hpp"
#include "explore/corpus.hpp"

#ifndef IBGP_CORPUS_DIR
#define IBGP_CORPUS_DIR "examples/data/corpus"
#endif

namespace {

using namespace ibgp;

std::vector<explore::CorpusEntry> load_entries() {
  return explore::load_corpus_dir(IBGP_CORPUS_DIR);
}

void report() {
  bench::heading("E18: counterexample corpus replay",
                 "every minimized counterexample keeps its recorded signature; the "
                 "modified protocol never oscillates on any of them");

  const auto entries = load_entries();
  std::printf("  corpus: %s (%zu entries)\n", IBGP_CORPUS_DIR, entries.size());
  if (entries.empty()) {
    std::printf("  corpus is empty — nothing to gate\n");
    return;
  }

  const auto t0 = std::chrono::steady_clock::now();
  const auto serial = explore::replay_corpus(entries, 1);
  const auto t1 = std::chrono::steady_clock::now();
  const std::size_t jobs = util::resolve_jobs(bench::config().jobs);
  const auto parallel = explore::replay_corpus(entries, jobs);
  const auto t2 = std::chrono::steady_clock::now();

  std::size_t matched = 0, med_induced = 0, hybrid = 0;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const auto& row = serial.rows[i];
    if (row.match) ++matched;
    if (entries[i].med_induced) ++med_induced;
    if (entries[i].hybrid) ++hybrid;
    if (!row.match || row.modified_oscillates) {
      std::printf("  %-22s match=%s modified=%s/%s  <-- PROBLEM\n", row.name.c_str(),
                  row.match ? "yes" : "NO",
                  engine::run_status_name(row.replayed[2].round_robin),
                  engine::run_status_name(row.replayed[2].synchronous));
    }
  }
  std::printf("  matched %zu/%zu signatures; tags: med-induced=%zu hybrid=%zu\n", matched,
              entries.size(), med_induced, hybrid);
  const bool fingerprints_equal = serial.fingerprint == parallel.fingerprint;
  std::printf("  replay fingerprint=%016llx (jobs=1) %016llx (jobs=%zu) %s\n",
              static_cast<unsigned long long>(serial.fingerprint),
              static_cast<unsigned long long>(parallel.fingerprint), jobs,
              fingerprints_equal ? "MATCH" : "MISMATCH");
  std::printf("  modified-protocol gate: %s\n",
              serial.modified_safe() ? "clean (never oscillates)" : "VIOLATED");

  util::json::Object doc;
  doc.emplace_back("schema", "ibgp-bench-v1");
  doc.emplace_back("bench", "bench_corpus");
  doc.emplace_back("experiment", "E18");
  doc.emplace_back("entries", entries.size());
  doc.emplace_back("matched", matched);
  doc.emplace_back("med_induced_entries", med_induced);
  doc.emplace_back("hybrid_entries", hybrid);
  doc.emplace_back("replay_fingerprint", serial.fingerprint);
  doc.emplace_back("fingerprint_match", fingerprints_equal);
  doc.emplace_back("modified_safe", serial.modified_safe());
  const double serial_wall = std::chrono::duration<double>(t1 - t0).count();
  const double parallel_wall = std::chrono::duration<double>(t2 - t1).count();
  doc.emplace_back("volatile",
                   bench::smoke_volatile_json(serial_wall, parallel_wall, jobs,
                                              parallel_wall > 0.0
                                                  ? serial_wall / parallel_wall
                                                  : 0.0));
  bench::write_json(util::json::Value(std::move(doc)));

  if (!serial.modified_safe()) {
    std::printf("\nFATAL: the modified protocol oscillated on a corpus entry — this "
                "contradicts the paper's convergence theorem.\n");
    std::exit(1);
  }
  if (!serial.all_match() || !fingerprints_equal) {
    std::printf("\nFATAL: corpus replay drifted from its recorded signatures.\n");
    std::exit(1);
  }
}

void BM_CorpusReplay(benchmark::State& state) {
  const auto entries = load_entries();
  for (auto _ : state) {
    auto replayed = explore::replay_corpus(entries, 1);
    benchmark::DoNotOptimize(replayed.fingerprint);
  }
}
BENCHMARK(BM_CorpusReplay)->Unit(benchmark::kMillisecond);

}  // namespace

IBGP_BENCH_MAIN(report)
