// Experiment E6 — Figure 13: the persistent-oscillation counterexample to
// the Walton et al. solution (Section 8).
//
// Reproduces: with MEDs active, BOTH classic I-BGP and the Walton per-AS
// vector protocol cycle under every deterministic schedule and fail to
// converge under random fair schedules; exhaustive search confirms no stable
// configuration exists for the standard protocol.  The oscillation is
// MED-induced: with MEDs ignored the same configuration converges at once.
// The paper's modified protocol converges deterministically.

#include "bench_common.hpp"

#include "analysis/determinism.hpp"
#include "analysis/stable_search.hpp"
#include "core/fixed_point.hpp"
#include "topo/figures.hpp"

namespace {

using namespace ibgp;

void report() {
  bench::heading("E6 / Figure 13: Walton et al. counterexample",
                 "MED-induced persistent oscillation that the Walton fix "
                 "does not prevent; the modified protocol converges");
  const auto inst = topo::fig13();

  const auto stable = analysis::enumerate_stable_standard(inst);
  std::printf("stable configurations (standard): %zu%s\n", stable.solutions.size(),
              stable.exhaustive ? " — exhaustive" : "");

  bench::report_grid(inst);

  std::printf("\nrandom fair schedules (100 runs, 4000-step budget):\n");
  for (const auto kind : {core::ProtocolKind::kStandard, core::ProtocolKind::kWalton,
                          core::ProtocolKind::kModified}) {
    analysis::DeterminismOptions options;
    options.runs = 100;
    options.max_steps = 4000;
    const auto determinism = analysis::check_determinism(inst, kind, options);
    std::printf("  %-9s : %zu/100 converged, %zu distinct outcomes\n",
                core::protocol_name(kind), determinism.converged,
                determinism.outcomes.size());
  }

  std::printf("\nMED-induced check (MedMode::kIgnore):\n");
  bgp::SelectionPolicy no_med;
  no_med.med = bgp::MedMode::kIgnore;
  const auto without = inst.with_policy(no_med);
  for (const auto kind : {core::ProtocolKind::kStandard, core::ProtocolKind::kWalton}) {
    const auto sig = analysis::classify(without, kind);
    std::printf("  %-9s without MEDs: round-robin=%s synchronous=%s\n",
                core::protocol_name(kind), engine::run_status_name(sig.round_robin),
                engine::run_status_name(sig.synchronous));
  }

  const auto prediction = core::predict_fixed_point(inst);
  std::vector<PathId> best;
  for (const auto& view : prediction.best) best.push_back(view ? view->path : kNoPath);
  std::printf("\nmodified fixed point: %s\n", engine::describe_best(inst, best).c_str());
}

void BM_WaltonUntilCycle(benchmark::State& state) {
  bench::run_protocol_benchmark(state, topo::fig13(), core::ProtocolKind::kWalton, 20000);
}
BENCHMARK(BM_WaltonUntilCycle);

void BM_ModifiedUntilConverged(benchmark::State& state) {
  bench::run_protocol_benchmark(state, topo::fig13(), core::ProtocolKind::kModified, 20000);
}
BENCHMARK(BM_ModifiedUntilConverged);

}  // namespace

IBGP_BENCH_MAIN(report)
