// Experiment E5 — Theorem 5.1 / Figures 7-9: the 3-SAT reduction.
//
// Reproduces: (a) the gadget properties — variable graphs have exactly two
// stable states, clause graphs alone have none; (b) the equivalence
// stable(reduce(phi)) <=> satisfiable(phi), checked exhaustively on small
// formulas and dynamically (steered convergence vs provable cycling) on
// larger ones; (c) the practical signature of NP-hardness: the growth of the
// exact stable-search effort with instance size, against the polynomial
// growth of the modified protocol's convergence (which sidesteps the
// decision problem entirely).

#include "bench_common.hpp"

#include "analysis/stable_search.hpp"
#include "sat/cnf.hpp"
#include "sat/dpll.hpp"
#include "sat/reduction.hpp"

namespace {

using namespace ibgp;

sat::Formula formula_for(std::uint32_t vars, std::size_t clauses, std::uint64_t seed) {
  return sat::random_3sat(vars, clauses, seed);
}

void report() {
  bench::heading("E5 / Theorem 5.1: 3-SAT -> Stable-I-BGP-with-RR",
                 "deciding stability is NP-complete; gadget counts and the "
                 "stable<=>satisfiable equivalence");

  // Equivalence table over a family of formulas.
  struct Case {
    const char* name;
    sat::Formula formula;
  };
  std::vector<Case> cases;
  {
    sat::Formula f1;
    f1.add_clause({sat::Lit{1}, sat::Lit{1}, sat::Lit{1}});
    cases.push_back({"x1 (sat)", f1});
    sat::Formula f2 = f1;
    f2.add_clause({sat::Lit{-1}, sat::Lit{-1}, sat::Lit{-1}});
    cases.push_back({"x1 & !x1 (unsat)", f2});
    sat::Formula f3;
    f3.add_clause({sat::Lit{1}, sat::Lit{2}, sat::Lit{2}});
    f3.add_clause({sat::Lit{-1}, sat::Lit{-2}, sat::Lit{-2}});
    cases.push_back({"xor-ish (sat)", f3});
    sat::Formula f4;
    f4.add_clause({sat::Lit{1}, sat::Lit{2}, sat::Lit{2}});
    f4.add_clause({sat::Lit{1}, sat::Lit{-2}, sat::Lit{-2}});
    f4.add_clause({sat::Lit{-1}, sat::Lit{2}, sat::Lit{2}});
    f4.add_clause({sat::Lit{-1}, sat::Lit{-2}, sat::Lit{-2}});
    cases.push_back({"all-2var-clauses (unsat)", f4});
  }

  std::printf("  %-24s | DPLL   | nodes | stable? | search nodes | agreement\n", "formula");
  std::printf("  -------------------------+--------+-------+---------+--------------+----------\n");
  for (auto& [name, formula] : cases) {
    const auto solved = sat::solve(formula);
    const auto reduction = sat::reduce_to_ibgp(formula);
    analysis::StableSearchLimits limits;
    // Exhaustive refutation is itself exponential; give small instances a
    // full budget and larger ones a bounded one (reported as "budget hit").
    limits.max_nodes = reduction.instance.node_count() <= 32 ? 50'000'000 : 1'000'000;
    const auto search = analysis::enumerate_stable_standard(reduction.instance, limits);
    std::printf("  %-24s | %-6s | %5zu | %-7s | %12llu | %s\n", name,
                solved.satisfiable ? "SAT" : "UNSAT", reduction.instance.node_count(),
                search.any() ? "yes" : (search.exhaustive ? "no" : "?"),
                static_cast<unsigned long long>(search.nodes_explored),
                !search.exhaustive          ? "budget hit"
                : search.any() == solved.satisfiable ? "HOLDS"
                                                     : "VIOLATED!");
  }

  // Growth of the exact search vs the modified protocol's convergence: the
  // search effort explodes with instance size (Theorem 5.1's practical
  // face), while the modified protocol -- which renders the decision problem
  // moot -- converges in step counts linear in the fairness period.
  std::printf("\nsearch-effort growth (exhaustive where feasible; cap 1.5M nodes):\n");
  std::printf(
      "  formula             routers  search-nodes  exhaustive  solutions  modified-steps\n");
  struct GrowthRow {
    const char* label;
    sat::Formula formula;
  };
  std::vector<GrowthRow> rows;
  {
    sat::Formula g1;
    g1.add_clause({sat::Lit{1}, sat::Lit{1}, sat::Lit{1}});
    rows.push_back({"x1", g1});
    sat::Formula g2 = g1;
    g2.add_clause({sat::Lit{-1}, sat::Lit{-1}, sat::Lit{-1}});
    rows.push_back({"x1 & !x1", g2});
    sat::Formula g3;
    g3.add_clause({sat::Lit{1}, sat::Lit{2}, sat::Lit{2}});
    g3.add_clause({sat::Lit{-1}, sat::Lit{-2}, sat::Lit{-2}});
    rows.push_back({"x1 xor-ish x2", g3});
    sat::Formula g4 = g3;
    g4.add_clause({sat::Lit{1}, sat::Lit{-2}, sat::Lit{-2}});
    rows.push_back({"3 clauses / 2 vars", g4});
    rows.push_back({"random 3v/4c", formula_for(3, 4, 11)});
  }
  for (auto& [label, formula] : rows) {
    const auto reduction = sat::reduce_to_ibgp(formula);
    analysis::StableSearchLimits limits;
    limits.max_nodes = reduction.instance.node_count() <= 32 ? 50'000'000 : 1'500'000;
    const auto search = analysis::enumerate_stable_standard(reduction.instance, limits);

    auto rr = engine::make_round_robin(reduction.instance.node_count());
    engine::RunLimits run_limits;
    run_limits.max_steps = 100000;
    const auto modified = engine::run_protocol(reduction.instance,
                                               core::ProtocolKind::kModified, *rr,
                                               run_limits);
    std::printf("  %-19s %7zu  %12llu  %-10s %9zu  %zu\n", label,
                reduction.instance.node_count(),
                static_cast<unsigned long long>(search.nodes_explored),
                search.exhaustive ? "yes" : "NO (cap)", search.solutions.size(),
                modified.converged() ? modified.quiescent_since : 0);
  }
}

void BM_Reduce(benchmark::State& state) {
  const auto formula = formula_for(4, 5, 7);
  for (auto _ : state) {
    auto reduction = sat::reduce_to_ibgp(formula);
    benchmark::DoNotOptimize(reduction.instance.node_count());
  }
}
BENCHMARK(BM_Reduce);

void BM_StableSearchSmall(benchmark::State& state) {
  sat::Formula formula;
  formula.add_clause({sat::Lit{1}, sat::Lit{1}, sat::Lit{1}});
  const auto reduction = sat::reduce_to_ibgp(formula);
  for (auto _ : state) {
    auto result = analysis::enumerate_stable_standard(reduction.instance);
    benchmark::DoNotOptimize(result.nodes_explored);
  }
}
BENCHMARK(BM_StableSearchSmall);

void BM_Dpll(benchmark::State& state) {
  const auto formula = formula_for(12, 40, 3);
  for (auto _ : state) {
    auto result = sat::solve(formula);
    benchmark::DoNotOptimize(result.decisions);
  }
}
BENCHMARK(BM_Dpll);

void BM_ModifiedOnReduction(benchmark::State& state) {
  const auto reduction = sat::reduce_to_ibgp(formula_for(4, 5, 7));
  bench::run_protocol_benchmark(state, reduction.instance, core::ProtocolKind::kModified,
                                100000);
}
BENCHMARK(BM_ModifiedOnReduction);

}  // namespace

IBGP_BENCH_MAIN(report)
