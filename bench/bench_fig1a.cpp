// Experiment E1 — Figure 1(a): the RFC 3345 persistent MED oscillation.
//
// Reproduces: standard I-BGP with route reflection oscillates persistently
// (a provable cycle; exhaustive search confirms no stable configuration
// exists); the Walton et al. fix and the paper's modified protocol both
// converge here; the modified protocol reaches its closed-form fixed point
// under every schedule.  Also reports the MED-mitigation rows the paper's
// introduction discusses (ignore-MED / always-compare-MED).

#include "bench_common.hpp"

#include "analysis/stable_search.hpp"
#include "core/fixed_point.hpp"
#include "topo/figures.hpp"

namespace {

using namespace ibgp;

void report() {
  bench::heading("E1 / Figure 1(a): persistent route oscillation",
                 "standard I-BGP+RR diverges (no stable configuration); "
                 "Walton and the modified protocol converge");
  const auto inst = topo::fig1a();

  const auto stable = analysis::enumerate_stable_standard(inst);
  std::printf("stable configurations (standard protocol): %zu%s\n", stable.solutions.size(),
              stable.exhaustive ? " — exhaustive" : "");

  bench::report_grid(inst);

  std::printf("\nMED mitigations (standard protocol, per Section 1):\n");
  for (const auto [label, mode] :
       {std::pair{"ignore-med", bgp::MedMode::kIgnore},
        std::pair{"always-compare-med", bgp::MedMode::kAlwaysCompare}}) {
    bgp::SelectionPolicy policy;
    policy.med = mode;
    const auto sig = analysis::classify(inst.with_policy(policy),
                                        core::ProtocolKind::kStandard);
    std::printf("  %-18s : round-robin=%s synchronous=%s\n", label,
                engine::run_status_name(sig.round_robin),
                engine::run_status_name(sig.synchronous));
  }

  const auto prediction = core::predict_fixed_point(inst);
  std::printf("\nmodified-protocol fixed point: S' size %zu, best: ", prediction.s_prime.size());
  std::vector<PathId> best;
  for (const auto& view : prediction.best) best.push_back(view ? view->path : kNoPath);
  std::printf("%s\n", engine::describe_best(inst, best).c_str());
}

void BM_StandardUntilCycle(benchmark::State& state) {
  bench::run_protocol_benchmark(state, topo::fig1a(), core::ProtocolKind::kStandard, 20000);
}
BENCHMARK(BM_StandardUntilCycle);

void BM_ModifiedUntilConverged(benchmark::State& state) {
  bench::run_protocol_benchmark(state, topo::fig1a(), core::ProtocolKind::kModified, 20000);
}
BENCHMARK(BM_ModifiedUntilConverged);

void BM_StableSearch(benchmark::State& state) {
  const auto inst = topo::fig1a();
  for (auto _ : state) {
    auto result = analysis::enumerate_stable_standard(inst);
    benchmark::DoNotOptimize(result.nodes_explored);
  }
}
BENCHMARK(BM_StableSearch);

}  // namespace

IBGP_BENCH_MAIN(report)
