// Unit tests for the exit-path registry and route-view construction.

#include <gtest/gtest.h>

#include "bgp/exit_path.hpp"
#include "bgp/exit_table.hpp"
#include "bgp/selection.hpp"
#include "netsim/physical_graph.hpp"
#include "netsim/shortest_paths.hpp"

namespace ibgp::bgp {
namespace {

ExitPath path_at(NodeId node, AsId as, const std::string& name = "") {
  ExitPath path;
  path.name = name;
  path.exit_point = node;
  path.next_as = as;
  return path;
}

TEST(ExitTable, AssignsDenseIdsAndNames) {
  ExitTable table;
  const PathId a = table.add(path_at(0, 1, "alpha"));
  const PathId b = table.add(path_at(1, 2));
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table[a].name, "alpha");
  EXPECT_EQ(table[b].name, "p1");  // auto-generated
}

TEST(ExitTable, AtThrowsOutOfRange) {
  ExitTable table;
  EXPECT_THROW(table.at(0), std::out_of_range);
  table.add(path_at(0, 1));
  EXPECT_NO_THROW(table.at(0));
  EXPECT_THROW(table.at(1), std::out_of_range);
}

TEST(ExitTable, ExitsFromFiltersByNode) {
  ExitTable table;
  table.add(path_at(0, 1));
  table.add(path_at(2, 1));
  table.add(path_at(0, 2));
  EXPECT_EQ(table.exits_from(0), (std::vector<PathId>{0, 2}));
  EXPECT_EQ(table.exits_from(1), (std::vector<PathId>{}));
  EXPECT_EQ(table.exits_from(2), (std::vector<PathId>{1}));
}

TEST(ExitTable, FindByName) {
  ExitTable table;
  table.add(path_at(0, 1, "r1"));
  EXPECT_EQ(table.find_by_name("r1"), 0u);
  EXPECT_EQ(table.find_by_name("nope"), kNoPath);
}

TEST(ExitTable, NeighborAsesSortedUnique) {
  ExitTable table;
  table.add(path_at(0, 7));
  table.add(path_at(1, 2));
  table.add(path_at(2, 7));
  EXPECT_EQ(table.neighbor_ases(), (std::vector<AsId>{2, 7}));
}

TEST(ExitPath, ToStringContainsAttributes) {
  ExitPath path = path_at(5, 3, "r9");
  path.med = 42;
  path.local_pref = 77;
  const auto text = to_string(path);
  EXPECT_NE(text.find("r9"), std::string::npos);
  EXPECT_NE(text.find("AS3"), std::string::npos);
  EXPECT_NE(text.find("med=42"), std::string::npos);
  EXPECT_NE(text.find("lp=77"), std::string::npos);
}

TEST(RouteView, MakeRouteViewComputesMetricAndClass) {
  netsim::PhysicalGraph graph(3);
  graph.add_link(0, 1, 4);
  graph.add_link(1, 2, 6);
  const netsim::ShortestPaths igp(graph);

  ExitTable table;
  ExitPath path = path_at(2, 1);
  path.exit_cost = 5;
  path.ebgp_peer = 900;
  const PathId id = table.add(path);

  const auto remote = make_route_view(table, igp, 0, {id, 33});
  ASSERT_TRUE(remote);
  EXPECT_EQ(remote->metric, 4 + 6 + 5);
  EXPECT_FALSE(remote->is_ebgp);
  EXPECT_EQ(remote->learned_from, 33u);

  const auto own = make_route_view(table, igp, 2, {id, 900});
  ASSERT_TRUE(own);
  EXPECT_EQ(own->metric, 5);  // exit cost only
  EXPECT_TRUE(own->is_ebgp);
}

TEST(RouteView, UnreachableGivesNullopt) {
  netsim::PhysicalGraph graph(3);
  graph.add_link(0, 1, 1);  // node 2 isolated
  const netsim::ShortestPaths igp(graph);
  ExitTable table;
  const PathId id = table.add(path_at(2, 1));
  EXPECT_FALSE(make_route_view(table, igp, 0, {id, 1}).has_value());
}

}  // namespace
}  // namespace ibgp::bgp
