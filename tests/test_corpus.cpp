// Corpus-replay suite (satellite of the policy explorer PR): every checked-in
// counterexample in examples/data/corpus must parse, rebuild, and reproduce
// its recorded per-protocol convergence signature, with --jobs 1 and --jobs 8
// replay fingerprints byte-identical, and the modified protocol converging on
// every single entry.

#include <gtest/gtest.h>

#include "explore/corpus.hpp"
#include "explore/spec.hpp"
#include "topo/dsl.hpp"
#include "topo/figures.hpp"

#ifndef IBGP_CORPUS_DIR
#define IBGP_CORPUS_DIR "examples/data/corpus"
#endif

namespace ibgp::explore {
namespace {

const std::vector<CorpusEntry>& corpus() {
  static const std::vector<CorpusEntry> entries = load_corpus_dir(IBGP_CORPUS_DIR);
  return entries;
}

TEST(Corpus, HasAtLeastTenEntries) { EXPECT_GE(corpus().size(), 10u); }

TEST(Corpus, CoversRequiredFamilies) {
  std::size_t med_induced = 0, hybrid = 0;
  for (const auto& entry : corpus()) {
    med_induced += entry.med_induced ? 1 : 0;
    hybrid += entry.hybrid ? 1 : 0;
  }
  EXPECT_GE(med_induced, 1u) << "corpus needs a MED-induced counterexample";
  EXPECT_GE(hybrid, 1u) << "corpus needs a confed/RR-hybrid counterexample";
}

TEST(Corpus, EntriesParseAndRoundTrip) {
  for (const auto& entry : corpus()) {
    SCOPED_TRACE(entry.name);
    // The topo body parses into a buildable instance...
    const auto inst = topo::parse_topo(entry.topo_text);
    // ...that re-serializes byte-identically,
    EXPECT_EQ(topo::write_topo(inst), entry.topo_text);
    // and the full entry survives its own write/parse cycle.
    const auto reparsed = parse_corpus_entry(write_corpus_entry(entry), entry.name);
    EXPECT_EQ(reparsed.topo_text, entry.topo_text);
    EXPECT_EQ(reparsed.max_steps, entry.max_steps);
    EXPECT_EQ(reparsed.med_induced, entry.med_induced);
    EXPECT_EQ(reparsed.hybrid, entry.hybrid);
    for (std::size_t p = 0; p < kCorpusProtocols; ++p) {
      EXPECT_EQ(reparsed.signatures[p].round_robin, entry.signatures[p].round_robin);
      EXPECT_EQ(reparsed.signatures[p].synchronous, entry.signatures[p].synchronous);
    }
  }
}

TEST(Corpus, ReplayMatchesRecordedSignatures) {
  const auto report = replay_corpus(corpus(), 1);
  ASSERT_EQ(report.rows.size(), corpus().size());
  for (const auto& row : report.rows) {
    EXPECT_TRUE(row.match) << row.name << " drifted from its recorded signature";
  }
  EXPECT_TRUE(report.all_match());
}

TEST(Corpus, ModifiedProtocolNeverOscillates) {
  const auto report = replay_corpus(corpus(), 1);
  for (const auto& row : report.rows) {
    EXPECT_FALSE(row.modified_oscillates)
        << row.name << " oscillates under the modified protocol — this would "
        << "contradict the paper's convergence theorem";
  }
  EXPECT_TRUE(report.modified_safe());
}

TEST(Corpus, ReplayFingerprintIdenticalAcrossJobs) {
  const auto serial = replay_corpus(corpus(), 1);
  const auto parallel = replay_corpus(corpus(), 8);
  EXPECT_EQ(serial.fingerprint, parallel.fingerprint);
  ASSERT_EQ(serial.rows.size(), parallel.rows.size());
  for (std::size_t i = 0; i < serial.rows.size(); ++i) {
    EXPECT_EQ(serial.rows[i].name, parallel.rows[i].name);
    EXPECT_EQ(serial.rows[i].match, parallel.rows[i].match);
  }
}

TEST(Corpus, WriteParseRoundTripUnit) {
  // Unit check independent of the on-disk corpus: fabricate an entry from
  // Fig 1(a) and push it through the serializer.
  const auto inst = topo::fig1a();
  const auto entry = make_corpus_entry(inst, 1234, /*med_induced=*/false,
                                       /*hybrid=*/true);
  EXPECT_EQ(entry.max_steps, 1234u);
  EXPECT_TRUE(entry.hybrid);
  EXPECT_FALSE(entry.med_induced);
  EXPECT_TRUE(entry.signatures[0].oscillates());   // standard cycles on fig1a
  EXPECT_FALSE(entry.signatures[2].oscillates());  // modified converges

  const std::string text = write_corpus_entry(entry);
  const auto back = parse_corpus_entry(text, "unit");
  EXPECT_EQ(back.topo_text, entry.topo_text);
  EXPECT_EQ(back.max_steps, entry.max_steps);
  EXPECT_EQ(back.hybrid, entry.hybrid);
  EXPECT_EQ(back.med_induced, entry.med_induced);
  EXPECT_EQ(write_corpus_entry(back), text);  // writer is a fixed point
}

TEST(Corpus, ParserRejectsMalformedEntries) {
  EXPECT_THROW(parse_corpus_entry("nodes a b\n", "x"), std::runtime_error);
  EXPECT_THROW(parse_corpus_entry("#! ibgp-corpus-v1\nnodes a\n", "x"),
               std::runtime_error);  // missing signatures
  EXPECT_THROW(parse_corpus_entry("#! ibgp-corpus-v1\n#! tag bogus\n", "x"),
               std::runtime_error);
}

// Asserts the parse fails AND the diagnostic contains `needle` (typically a
// "source:line:" prefix), so broken checked-in entries are pinpointable.
void expect_corpus_error(std::string_view text, std::string_view needle) {
  try {
    parse_corpus_entry(text, "entry");
    FAIL() << "expected parse error containing '" << needle << "'";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos) << e.what();
  }
}

TEST(Corpus, MalformedHeadersCarrySourceAndLine) {
  // Unknown tag on line 2.
  expect_corpus_error("#! ibgp-corpus-v1\n#! tag bogus\n", "entry:2:");
  // Garbage header line keeps its line number.
  expect_corpus_error("#! ibgp-corpus-v1\n\n#! frobnicate\n", "entry:3:");
  // Bad max-steps names the field and the offending token.
  expect_corpus_error("#! ibgp-corpus-v1\n#! max-steps zero\n", "max-steps");
  expect_corpus_error("#! ibgp-corpus-v1\n#! max-steps 0\n", "entry:2:");
  // Signature field errors surface the line, not just the helper message.
  expect_corpus_error(
      "#! ibgp-corpus-v1\n#! signature standard round-robin=maybe synchronous=converged\n",
      "entry:2:");
  expect_corpus_error(
      "#! ibgp-corpus-v1\n#! signature ospf round-robin=converged synchronous=converged\n",
      "unknown protocol");
}

TEST(Corpus, TruncatedBodyIsDiagnosed) {
  // All headers present but the topo text is missing entirely (the classic
  // torn-write shape): must say "truncated", not fail later in the DSL.
  const std::string headers =
      "#! ibgp-corpus-v1\n"
      "#! signature standard round-robin=oscillates synchronous=oscillates\n"
      "#! signature walton round-robin=converged synchronous=converged\n"
      "#! signature modified round-robin=converged synchronous=converged\n";
  expect_corpus_error(headers, "truncated entry");
  // Comment-only bodies are still truncated — comments are not topology.
  expect_corpus_error(headers + "# generated by ibgp-rr\n", "truncated entry");
  // A real body line clears the check (and then fails on missing nodes or
  // parses fine — either way, not as "truncated").
  const auto entry = parse_corpus_entry(headers + "instance t\nnode A reflector 0\n", "e");
  EXPECT_NE(entry.topo_text.find("node A"), std::string::npos);
}

TEST(Corpus, MissingMagicIsDiagnosed) {
  expect_corpus_error(
      "#! signature standard round-robin=converged synchronous=converged\n"
      "instance t\nnode A reflector 0\n",
      "missing '#! ibgp-corpus-v1'");
}

}  // namespace
}  // namespace ibgp::explore
