// Property-based suites over random configurations: the paper's Section 7
// theorems must hold on EVERY instance, so we sample topology ensembles and
// verify convergence, schedule-independence, the closed-form fixed point,
// loop-freedom, and route flushing.  Parameterized over seeds so each seed
// is an independently reported test case.

#include <gtest/gtest.h>

#include <set>

#include "analysis/determinism.hpp"
#include "analysis/finder.hpp"
#include "analysis/forwarding.hpp"
#include "analysis/stable_search.hpp"
#include "core/fixed_point.hpp"
#include "engine/activation.hpp"
#include "engine/event_engine.hpp"
#include "engine/oscillation.hpp"
#include "engine/sync_engine.hpp"
#include "topo/random.hpp"
#include "util/rng.hpp"

namespace ibgp {
namespace {

using core::ProtocolKind;
using engine::RunStatus;

topo::RandomConfig ensemble_config(std::uint64_t seed) {
  // Vary the ensemble with the seed so the suites cover meshes, deep
  // clusters, multi-reflector clusters, and MED-heavy universes.
  topo::RandomConfig config;
  config.clusters = 2 + seed % 4;
  config.min_clients = 0;
  config.max_clients = 1 + seed % 3;
  config.second_reflector_prob = (seed % 5 == 0) ? 0.4 : 0.0;
  config.neighbor_ases = 1 + seed % 3;
  config.exits = 3 + seed % 5;
  config.max_med = 1 + static_cast<Med>(seed % 4);
  config.max_exit_cost = static_cast<Cost>(seed % 6);
  config.extra_link_prob = 0.15 + 0.1 * static_cast<double>(seed % 4);
  return config;
}

class RandomInstanceProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  core::Instance make_instance() const {
    return topo::random_instance(ensemble_config(GetParam()), GetParam());
  }
};

// --- Theorem (Section 7): the modified protocol always converges ---------------

TEST_P(RandomInstanceProperty, ModifiedConvergesUnderDeterministicSchedules) {
  const auto inst = make_instance();
  const auto sig = analysis::classify(inst, ProtocolKind::kModified, 30000);
  EXPECT_EQ(sig.round_robin, RunStatus::kConverged);
  EXPECT_EQ(sig.synchronous, RunStatus::kConverged);
}

TEST_P(RandomInstanceProperty, ModifiedMatchesClosedFormFixedPoint) {
  const auto inst = make_instance();
  const auto prediction = core::predict_fixed_point(inst);
  auto rr = engine::make_round_robin(inst.node_count());
  const auto outcome = engine::run_protocol(inst, ProtocolKind::kModified, *rr);
  ASSERT_EQ(outcome.status, RunStatus::kConverged);
  for (NodeId v = 0; v < inst.node_count(); ++v) {
    const PathId expected = prediction.best[v] ? prediction.best[v]->path : kNoPath;
    ASSERT_EQ(outcome.final_best[v], expected) << "node " << v;
  }
}

TEST_P(RandomInstanceProperty, ModifiedDeterministicAcrossRandomSchedules) {
  const auto inst = make_instance();
  analysis::DeterminismOptions options;
  options.runs = 25;
  options.seed = GetParam() * 31 + 7;
  const auto report = analysis::check_determinism(inst, ProtocolKind::kModified, options);
  EXPECT_TRUE(report.deterministic())
      << report.outcomes.size() << " outcomes, " << report.not_converged << " unfinished";
}

TEST_P(RandomInstanceProperty, ModifiedSurvivesCrashRestart) {
  const auto inst = make_instance();
  analysis::DeterminismOptions options;
  options.runs = 15;
  options.crash_prob = 1.0;
  options.seed = GetParam() * 13 + 3;
  const auto report = analysis::check_determinism(inst, ProtocolKind::kModified, options);
  EXPECT_TRUE(report.deterministic());
}

TEST_P(RandomInstanceProperty, ModifiedEventEngineAgrees) {
  const auto inst = make_instance();
  const auto prediction = core::predict_fixed_point(inst);
  auto rng = std::make_shared<util::Xoshiro256>(GetParam() ^ 0xD15EA5E);
  engine::EventEngine event(inst, ProtocolKind::kModified,
                            [rng](NodeId, NodeId, std::uint64_t) -> engine::SimTime {
                              return 1 + rng->below(25);
                            });
  event.inject_all_exits();
  const auto result = event.run(2'000'000);
  ASSERT_TRUE(result.converged);
  for (NodeId v = 0; v < inst.node_count(); ++v) {
    const PathId expected = prediction.best[v] ? prediction.best[v]->path : kNoPath;
    ASSERT_EQ(result.final_best[v], expected) << "node " << v;
  }
}

// --- Lemma 7.6/7.7: loop-free forwarding ------------------------------------------

TEST_P(RandomInstanceProperty, ModifiedForwardingLoopFree) {
  const auto inst = make_instance();
  auto rr = engine::make_round_robin(inst.node_count());
  const auto outcome = engine::run_protocol(inst, ProtocolKind::kModified, *rr);
  ASSERT_EQ(outcome.status, RunStatus::kConverged);
  const auto report = analysis::analyze_forwarding(inst, outcome.final_best);
  EXPECT_EQ(report.loops, 0u);
}

// --- Lemma 7.2: withdrawn routes flush ----------------------------------------------

TEST_P(RandomInstanceProperty, WithdrawnExitFlushes) {
  const auto inst = make_instance();
  if (inst.exits().empty()) GTEST_SKIP();
  engine::SyncEngine sim(inst, ProtocolKind::kModified);
  auto rr = engine::make_round_robin(inst.node_count());
  engine::run(sim, *rr, {});
  const PathId victim = static_cast<PathId>(GetParam() % inst.exits().size());
  sim.withdraw_exit(victim);
  const auto outcome = engine::run(sim, *rr, {});
  ASSERT_EQ(outcome.status, RunStatus::kConverged);
  for (NodeId v = 0; v < inst.node_count(); ++v) {
    const auto ids = sim.possible_ids(v);
    ASSERT_FALSE(std::binary_search(ids.begin(), ids.end(), victim)) << "node " << v;
  }
}

// --- stable-search cross-checks ------------------------------------------------------

TEST_P(RandomInstanceProperty, StandardConvergenceImpliesEnumeratedSolution) {
  const auto inst = make_instance();
  auto rr = engine::make_round_robin(inst.node_count());
  const auto outcome = engine::run_protocol(inst, ProtocolKind::kStandard, *rr, {});
  if (outcome.status != RunStatus::kConverged) GTEST_SKIP();
  analysis::StableSearchLimits limits;
  limits.max_nodes = 5'000'000;
  const auto search = analysis::enumerate_stable_standard(inst, limits);
  if (!search.exhaustive) GTEST_SKIP();
  EXPECT_NE(
      std::find(search.solutions.begin(), search.solutions.end(), outcome.final_best),
      search.solutions.end());
}

TEST_P(RandomInstanceProperty, StandardCycleImpliesSometimesNoStableSolution) {
  // A detected cycle under round-robin doesn't forbid stable solutions
  // (transient oscillation), but if the exhaustive search finds NONE then
  // every schedule must fail too — cross-check on the synchronous run.
  const auto inst = make_instance();
  analysis::StableSearchLimits limits;
  limits.max_nodes = 5'000'000;
  const auto search = analysis::enumerate_stable_standard(inst, limits);
  if (!search.exhaustive || search.any()) GTEST_SKIP();
  const auto sig = analysis::classify(inst, ProtocolKind::kStandard, 30000);
  EXPECT_NE(sig.round_robin, RunStatus::kConverged);
  EXPECT_NE(sig.synchronous, RunStatus::kConverged);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomInstanceProperty,
                         ::testing::Range<std::uint64_t>(1, 41));

// --- aggregate sanity over a larger sweep --------------------------------------------

TEST(Ensemble, ModifiedNeverOscillatesIn500Instances) {
  std::size_t oscillated = 0;
  for (std::uint64_t seed = 100; seed < 600; ++seed) {
    const auto inst = topo::random_instance(ensemble_config(seed), seed);
    const auto sig = analysis::classify(inst, ProtocolKind::kModified, 8000);
    if (!sig.converges_always_tested()) ++oscillated;
  }
  EXPECT_EQ(oscillated, 0u);
}

TEST(Ensemble, StandardDoesOscillateSomewhere) {
  // The converse sanity check: the ensemble is rich enough that standard
  // I-BGP oscillates on some instances (otherwise the suite above proves
  // nothing interesting).
  std::size_t oscillated = 0;
  for (std::uint64_t seed = 100; seed < 300; ++seed) {
    const auto inst = topo::random_instance(ensemble_config(seed), seed);
    if (analysis::classify(inst, ProtocolKind::kStandard, 8000).oscillates()) {
      ++oscillated;
    }
  }
  EXPECT_GT(oscillated, 0u);
}

}  // namespace
}  // namespace ibgp
