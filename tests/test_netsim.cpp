// Unit tests for the network substrate: physical graph, deterministic
// shortest paths, cluster layout, session graph and Section 4 validation.

#include <gtest/gtest.h>

#include "netsim/cluster_layout.hpp"
#include "netsim/physical_graph.hpp"
#include "netsim/session_graph.hpp"
#include "netsim/shortest_paths.hpp"
#include "netsim/validate.hpp"

namespace ibgp::netsim {
namespace {

// --- PhysicalGraph -----------------------------------------------------------

TEST(PhysicalGraph, AddAndQueryLinks) {
  PhysicalGraph g(3);
  g.add_link(0, 1, 5);
  g.add_link(1, 2, 7);
  EXPECT_EQ(g.link_cost(0, 1), 5);
  EXPECT_EQ(g.link_cost(1, 0), 5);
  EXPECT_EQ(g.link_cost(0, 2), kInfCost);
  EXPECT_TRUE(g.has_link(1, 2));
  EXPECT_EQ(g.link_count(), 2u);
}

TEST(PhysicalGraph, ParallelLinksKeepCheapest) {
  PhysicalGraph g(2);
  g.add_link(0, 1, 9);
  g.add_link(0, 1, 4);
  g.add_link(0, 1, 6);
  EXPECT_EQ(g.link_cost(0, 1), 4);
  EXPECT_EQ(g.link_count(), 1u);
}

TEST(PhysicalGraph, RejectsBadInput) {
  PhysicalGraph g(2);
  EXPECT_THROW(g.add_link(0, 0, 1), std::invalid_argument);  // self loop
  EXPECT_THROW(g.add_link(0, 5, 1), std::invalid_argument);  // out of range
  EXPECT_THROW(g.add_link(0, 1, 0), std::invalid_argument);  // non-positive
  EXPECT_THROW(g.add_link(0, 1, -3), std::invalid_argument);
}

TEST(PhysicalGraph, Connectivity) {
  PhysicalGraph g(4);
  g.add_link(0, 1, 1);
  g.add_link(2, 3, 1);
  EXPECT_FALSE(g.connected());
  g.add_link(1, 2, 1);
  EXPECT_TRUE(g.connected());
}

TEST(PhysicalGraph, AddNodeGrows) {
  PhysicalGraph g(1);
  const NodeId v = g.add_node();
  EXPECT_EQ(v, 1u);
  g.add_link(0, v, 2);
  EXPECT_TRUE(g.connected());
}

// --- ShortestPaths -----------------------------------------------------------

TEST(ShortestPaths, SimpleChain) {
  PhysicalGraph g(4);
  g.add_link(0, 1, 1);
  g.add_link(1, 2, 2);
  g.add_link(2, 3, 3);
  const ShortestPaths sp(g);
  EXPECT_EQ(sp.cost(0, 3), 6);
  EXPECT_EQ(sp.cost(3, 0), 6);
  EXPECT_EQ(sp.cost(1, 1), 0);
  EXPECT_EQ(sp.next_hop(0, 3), 1u);
  EXPECT_EQ(sp.path(0, 3), (std::vector<NodeId>{0, 1, 2, 3}));
  EXPECT_EQ(sp.hop_count(0, 3), 3u);
}

TEST(ShortestPaths, PicksCheaperOfTwoRoutes) {
  PhysicalGraph g(4);
  g.add_link(0, 1, 10);
  g.add_link(1, 3, 10);
  g.add_link(0, 2, 3);
  g.add_link(2, 3, 3);
  const ShortestPaths sp(g);
  EXPECT_EQ(sp.cost(0, 3), 6);
  EXPECT_EQ(sp.next_hop(0, 3), 2u);
}

TEST(ShortestPaths, DeterministicTieBreakLowestNeighbor) {
  // Two equal-cost paths 0-1-3 and 0-2-3; the deterministic choice must be
  // via node 1 (lowest next hop id).
  PhysicalGraph g(4);
  g.add_link(0, 1, 5);
  g.add_link(1, 3, 5);
  g.add_link(0, 2, 5);
  g.add_link(2, 3, 5);
  const ShortestPaths sp(g);
  EXPECT_EQ(sp.cost(0, 3), 10);
  EXPECT_EQ(sp.next_hop(0, 3), 1u);
  EXPECT_EQ(sp.path(0, 3), (std::vector<NodeId>{0, 1, 3}));
}

TEST(ShortestPaths, UnreachableReported) {
  PhysicalGraph g(3);
  g.add_link(0, 1, 1);
  const ShortestPaths sp(g);
  EXPECT_FALSE(sp.reachable(0, 2));
  EXPECT_EQ(sp.cost(0, 2), kInfCost);
  EXPECT_EQ(sp.next_hop(0, 2), kNoNode);
  EXPECT_TRUE(sp.path(0, 2).empty());
  EXPECT_FALSE(sp.hop_count(0, 2).has_value());
}

TEST(ShortestPaths, PathToSelf) {
  PhysicalGraph g(2);
  g.add_link(0, 1, 1);
  const ShortestPaths sp(g);
  EXPECT_EQ(sp.path(1, 1), (std::vector<NodeId>{1}));
  EXPECT_EQ(sp.next_hop(1, 1), kNoNode);
}

TEST(ShortestPaths, HopByHopConsistency) {
  // Following next_hop from any node must realize exactly cost(u,v).
  PhysicalGraph g(6);
  g.add_link(0, 1, 2);
  g.add_link(1, 2, 2);
  g.add_link(0, 3, 1);
  g.add_link(3, 4, 1);
  g.add_link(4, 2, 1);
  g.add_link(1, 4, 5);
  g.add_link(2, 5, 4);
  const ShortestPaths sp(g);
  for (NodeId u = 0; u < 6; ++u) {
    for (NodeId v = 0; v < 6; ++v) {
      if (u == v) continue;
      Cost walked = 0;
      NodeId cur = u;
      while (cur != v) {
        const NodeId next = sp.next_hop(cur, v);
        ASSERT_NE(next, kNoNode);
        walked += g.link_cost(cur, next);
        cur = next;
      }
      EXPECT_EQ(walked, sp.cost(u, v)) << u << "->" << v;
    }
  }
}

// --- ClusterLayout -----------------------------------------------------------

TEST(ClusterLayout, AssignAndQuery) {
  ClusterLayout layout(4);
  layout.assign(0, 0, Role::kReflector);
  layout.assign(1, 0, Role::kClient);
  layout.assign(2, 1, Role::kReflector);
  layout.assign(3, 1, Role::kClient);
  EXPECT_TRUE(layout.complete());
  EXPECT_EQ(layout.cluster_count(), 2u);
  EXPECT_TRUE(layout.is_reflector(0));
  EXPECT_TRUE(layout.is_client(3));
  EXPECT_TRUE(layout.same_cluster(0, 1));
  EXPECT_FALSE(layout.same_cluster(1, 2));
  EXPECT_EQ(layout.reflectors_of(0), (std::vector<NodeId>{0}));
  EXPECT_EQ(layout.clients_of(1), (std::vector<NodeId>{3}));
  EXPECT_EQ(layout.all_reflectors(), (std::vector<NodeId>{0, 2}));
  EXPECT_EQ(layout.all_clients(), (std::vector<NodeId>{1, 3}));
}

TEST(ClusterLayout, IncompleteDetected) {
  ClusterLayout layout(2);
  layout.assign(0, 0, Role::kReflector);
  EXPECT_FALSE(layout.complete());  // node 1 unassigned
}

TEST(ClusterLayout, ReflectorlessClusterDetected) {
  ClusterLayout layout(2);
  layout.assign(0, 0, Role::kClient);
  layout.assign(1, 0, Role::kClient);
  EXPECT_FALSE(layout.complete());
}

TEST(ClusterLayout, RejectsDoubleAssignAndSparseIds) {
  ClusterLayout layout(3);
  layout.assign(0, 0, Role::kReflector);
  EXPECT_THROW(layout.assign(0, 0, Role::kClient), std::invalid_argument);
  EXPECT_THROW(layout.assign(1, 5, Role::kReflector), std::invalid_argument);
}

TEST(ClusterLayout, FullMeshFactory) {
  const auto layout = ClusterLayout::full_mesh(3);
  EXPECT_TRUE(layout.complete());
  EXPECT_EQ(layout.cluster_count(), 3u);
  for (NodeId v = 0; v < 3; ++v) EXPECT_TRUE(layout.is_reflector(v));
}

// --- SessionGraph ------------------------------------------------------------

ClusterLayout two_cluster_layout() {
  ClusterLayout layout(5);
  layout.assign(0, 0, Role::kReflector);
  layout.assign(1, 0, Role::kClient);
  layout.assign(2, 0, Role::kClient);
  layout.assign(3, 1, Role::kReflector);
  layout.assign(4, 1, Role::kClient);
  return layout;
}

TEST(SessionGraph, BuildsMeshAndSpokes) {
  const auto sessions = build_session_graph(two_cluster_layout());
  EXPECT_TRUE(sessions.has_session(0, 3));   // reflector mesh
  EXPECT_TRUE(sessions.has_session(0, 1));   // client spokes
  EXPECT_TRUE(sessions.has_session(0, 2));
  EXPECT_TRUE(sessions.has_session(3, 4));
  EXPECT_FALSE(sessions.has_session(1, 2));  // no client-client by default
  EXPECT_FALSE(sessions.has_session(1, 3));  // never cross-cluster client
  EXPECT_FALSE(sessions.has_session(1, 4));
  EXPECT_EQ(sessions.session_count(), 4u);
}

TEST(SessionGraph, OptionalClientClientSameCluster) {
  const std::vector<std::pair<NodeId, NodeId>> extra{{1, 2}};
  const auto sessions = build_session_graph(two_cluster_layout(), extra);
  EXPECT_TRUE(sessions.has_session(1, 2));
}

TEST(SessionGraph, RejectsCrossClusterClientSession) {
  const std::vector<std::pair<NodeId, NodeId>> extra{{1, 4}};
  EXPECT_THROW(build_session_graph(two_cluster_layout(), extra), std::invalid_argument);
}

TEST(SessionGraph, RejectsClientSessionOnReflector) {
  const std::vector<std::pair<NodeId, NodeId>> extra{{0, 1}};
  EXPECT_THROW(build_session_graph(two_cluster_layout(), extra), std::invalid_argument);
}

TEST(SessionGraph, MultiReflectorClusterMeshed) {
  ClusterLayout layout(3);
  layout.assign(0, 0, Role::kReflector);
  layout.assign(1, 0, Role::kReflector);
  layout.assign(2, 0, Role::kClient);
  const auto sessions = build_session_graph(layout);
  EXPECT_TRUE(sessions.has_session(0, 1));  // same-cluster reflectors meshed
  EXPECT_TRUE(sessions.has_session(2, 0));  // client to BOTH reflectors
  EXPECT_TRUE(sessions.has_session(2, 1));
}

TEST(SessionGraph, PeersSortedAscending) {
  const auto sessions = build_session_graph(two_cluster_layout());
  const auto peers = sessions.peers(0);
  EXPECT_TRUE(std::is_sorted(peers.begin(), peers.end()));
}

// --- validate ----------------------------------------------------------------

TEST(Validate, AcceptsWellFormed) {
  const auto layout = two_cluster_layout();
  PhysicalGraph g(5);
  g.add_link(0, 1, 1);
  g.add_link(0, 2, 1);
  g.add_link(0, 3, 1);
  g.add_link(3, 4, 1);
  const auto report = validate(g, layout, build_session_graph(layout));
  EXPECT_TRUE(report.ok()) << (report.errors.empty() ? "" : report.errors[0]);
  EXPECT_TRUE(report.warnings.empty());
}

TEST(Validate, DetectsMissingMeshSession) {
  const auto layout = two_cluster_layout();
  SessionGraph sessions(5);  // empty: everything missing
  PhysicalGraph g(5);
  g.add_link(0, 1, 1);
  const auto report = validate(g, layout, sessions);
  EXPECT_FALSE(report.ok());
}

TEST(Validate, WarnsOnDisconnectedPhysical) {
  const auto layout = two_cluster_layout();
  PhysicalGraph g(5);  // no links at all
  const auto report = validate(g, layout, build_session_graph(layout));
  EXPECT_TRUE(report.ok());
  EXPECT_FALSE(report.warnings.empty());
}

TEST(Validate, WarnsOnTriangleViolation) {
  const auto layout = two_cluster_layout();
  PhysicalGraph g(5);
  g.add_link(0, 1, 1);
  g.add_link(1, 2, 1);
  g.add_link(0, 2, 100);  // direct link costlier than the 2-hop path
  g.add_link(0, 3, 1);
  g.add_link(3, 4, 1);
  const auto report = validate(g, layout, build_session_graph(layout));
  EXPECT_TRUE(report.ok());
  ASSERT_FALSE(report.warnings.empty());
  EXPECT_NE(report.warnings[0].find("triangle"), std::string::npos);
}

TEST(Validate, DetectsNodeCountMismatch) {
  const auto layout = two_cluster_layout();
  PhysicalGraph g(3);
  const auto report = validate(g, layout, build_session_graph(layout));
  EXPECT_FALSE(report.ok());
}

}  // namespace
}  // namespace ibgp::netsim
