// Checkpoint/restore and supervised-sweep suite.
//
// The centerpiece is the kill-at-every-tick oracle: for every fault family
// (session flaps, cold crash/restart, graceful restart, message loss/dup +
// exit-flap storms, IGP churn + partition) the campaign is checkpointed
// after k deliveries for EVERY k in [1, D) and resumed; the resumed
// CampaignResult — engine Result, trace hash, decision-provenance
// histograms, continuity, settle time — and a fresh metrics registry must
// be identical to the uninterrupted run's.  Every third kill point routes
// the state through the full ibgp-ckpt-v1 JSON encode/decode, so the
// serializer is pinned by the same oracle.
//
// The supervisor half covers graceful degradation (a throwing cell becomes
// a structured CellError instead of sinking the sweep — the regression for
// the old lowest-index-exception-wins policy), strict mode, per-cell
// deadlines with retry, and the cell-completion journal: a sweep killed
// after journaling only some cells resumes to a byte-identical final JSON
// document, for --jobs 1 and --jobs N alike.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "fault/campaign.hpp"
#include "fault/script.hpp"
#include "fault/supervisor.hpp"
#include "fault/sweep.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "topo/figures.hpp"
#include "util/json.hpp"

namespace ibgp::fault {
namespace {

using core::ProtocolKind;

// Unwraps util::json::parse for well-formed test inputs (throws
// std::bad_optional_access on malformed text, failing the test loudly).
util::json::Value parse_json(const std::string& text) {
  return util::json::parse(text).value();
}

// One fault family exercised by the oracle.
struct Family {
  const char* name;
  FaultScriptConfig config;
};

std::vector<Family> fault_families() {
  std::vector<Family> out;
  {
    FaultScriptConfig c;
    c.seed = 101;
    c.session_flaps = 2;
    c.window_end = 200;
    out.push_back({"session-flaps", c});
  }
  {
    FaultScriptConfig c;
    c.seed = 202;
    c.crashes = 1;
    c.window_end = 200;
    out.push_back({"crash-restart", c});
  }
  {
    FaultScriptConfig c;
    c.seed = 303;
    c.graceful_restarts = 1;
    c.stale_timer = 40;
    c.window_end = 200;
    out.push_back({"graceful-restart", c});
  }
  {
    FaultScriptConfig c;
    c.seed = 404;
    c.exit_flaps = 2;
    c.loss_prob = 0.15;
    c.dup_prob = 0.10;
    c.window_end = 200;
    out.push_back({"loss-dup-exit-flaps", c});
  }
  {
    FaultScriptConfig c;
    c.seed = 505;
    c.link_cost_changes = 1;
    c.link_downs = 1;
    c.partitions = 1;
    c.window_end = 200;
    out.push_back({"igp-churn-partition", c});
  }
  return out;
}

// Asserts `resumed` is indistinguishable from the uninterrupted `full`.
void expect_same_outcome(const CampaignResult& resumed, const CampaignResult& full) {
  ASSERT_EQ(resumed.trace_hash, full.trace_hash);
  ASSERT_EQ(resumed.run.converged, full.run.converged);
  ASSERT_EQ(resumed.run.budget_exhausted, full.run.budget_exhausted);
  ASSERT_EQ(resumed.run.deliveries, full.run.deliveries);
  ASSERT_EQ(resumed.run.end_time, full.run.end_time);
  ASSERT_EQ(resumed.run.updates_sent, full.run.updates_sent);
  ASSERT_EQ(resumed.run.best_flips, full.run.best_flips);
  ASSERT_EQ(resumed.run.final_best, full.run.final_best);
  ASSERT_EQ(resumed.run.faults_applied, full.run.faults_applied);
  ASSERT_EQ(resumed.run.faults_pending, full.run.faults_pending);
  ASSERT_EQ(resumed.run.messages_dropped, full.run.messages_dropped);
  ASSERT_EQ(resumed.run.messages_duplicated, full.run.messages_duplicated);
  ASSERT_EQ(resumed.run.deliveries_voided, full.run.deliveries_voided);
  ASSERT_EQ(resumed.run.eor_markers_sent, full.run.eor_markers_sent);
  ASSERT_EQ(resumed.run.stale_retained, full.run.stale_retained);
  ASSERT_EQ(resumed.run.stale_swept_eor, full.run.stale_swept_eor);
  ASSERT_EQ(resumed.run.stale_swept_expired, full.run.stale_swept_expired);
  ASSERT_EQ(resumed.run.igp_epoch_swaps, full.run.igp_epoch_swaps);
  // Decision provenance, in full.
  ASSERT_EQ(resumed.run.decisions_total, full.run.decisions_total);
  ASSERT_EQ(resumed.run.decisions_empty, full.run.decisions_empty);
  ASSERT_EQ(resumed.run.mrai_deferrals, full.run.mrai_deferrals);
  ASSERT_EQ(resumed.run.decisions_by_rule, full.run.decisions_by_rule);
  ASSERT_EQ(resumed.run.decisions_by_node, full.run.decisions_by_node);
  // Campaign-level verdicts.
  ASSERT_EQ(resumed.last_fault_time, full.last_fault_time);
  ASSERT_EQ(resumed.settle_time, full.settle_time);
  ASSERT_EQ(resumed.invariants.violations, full.invariants.violations);
  ASSERT_EQ(resumed.continuity.ok_ticks, full.continuity.ok_ticks);
  ASSERT_EQ(resumed.continuity.stale_ticks, full.continuity.stale_ticks);
  ASSERT_EQ(resumed.continuity.blackhole_ticks, full.continuity.blackhole_ticks);
  ASSERT_EQ(resumed.continuity.loop_ticks, full.continuity.loop_ticks);
  ASSERT_EQ(resumed.continuity.deflection_ticks, full.continuity.deflection_ticks);
}

// The oracle: kill after every single delivery count and resume; every
// third kill point additionally round-trips the state through the
// ibgp-ckpt-v1 JSON serializer.
void kill_at_every_tick(const core::Instance& inst, ProtocolKind protocol,
                        const FaultScriptConfig& config, std::size_t max_deliveries,
                        const char* label) {
  const FaultScript script = make_fault_script(inst, config);
  CampaignOptions options;
  options.max_deliveries = max_deliveries;

  obs::MetricsRegistry full_registry;
  register_campaign_metrics(full_registry);
  CampaignOptions full_options = options;
  full_options.metrics = &full_registry;
  const CampaignResult full = run_campaign(inst, protocol, script, full_options);
  ASSERT_GT(full.run.deliveries, 0u) << label;
  // The oracle is O(D^2); a family whose campaign balloons should be
  // re-tuned, not silently crawl through CI.
  ASSERT_LT(full.run.deliveries, 4000u) << label;

  for (std::size_t k = 1; k < full.run.deliveries; ++k) {
    SCOPED_TRACE(std::string(label) + " kill@" + std::to_string(k));
    engine::EngineState state = campaign_checkpoint(inst, protocol, script, options, k);
    if (k % 3 == 0) {
      state = ckpt::parse_engine_state(ckpt::engine_state_json(state));
    }
    obs::MetricsRegistry registry;
    register_campaign_metrics(registry);
    CampaignOptions resume_options = options;
    resume_options.metrics = &registry;
    const CampaignResult resumed =
        resume_campaign(inst, protocol, script, state, resume_options);
    expect_same_outcome(resumed, full);
    // The decision-provenance histogram and every other deterministic
    // counter land identically in a fresh registry.
    ASSERT_EQ(registry.fingerprint(), full_registry.fingerprint());
  }
}

TEST(CkptOracle, KillAtEveryTickAcrossFaultFamilies) {
  const auto inst = topo::fig1a();
  for (const auto& family : fault_families()) {
    kill_at_every_tick(inst, ProtocolKind::kModified, family.config, 1'000'000,
                       family.name);
  }
}

TEST(CkptOracle, KillAtEveryTickOnTruncatedRun) {
  // Standard I-BGP oscillates on Fig 1(a); cap the budget so the run is
  // budget-truncated and check resume ≡ uninterrupted holds for truncated
  // histories too (pending events, faults_pending, no settle time).
  const auto inst = topo::fig1a();
  FaultScriptConfig config;
  config.seed = 7;
  config.session_flaps = 1;
  config.window_end = 120;
  kill_at_every_tick(inst, ProtocolKind::kStandard, config, 600, "standard-truncated");
}

TEST(CkptOracle, ResumeEmitsTraceMarkers) {
  const auto inst = topo::fig1a();
  FaultScriptConfig config;
  config.seed = 101;
  config.session_flaps = 2;
  config.window_end = 200;
  const FaultScript script = make_fault_script(inst, config);

  std::string lines;
  obs::TraceSink sink;
  sink.open_writer([&](std::string_view line) { lines += line; });
  CampaignOptions options;
  options.trace = &sink;
  const auto state = campaign_checkpoint(inst, ProtocolKind::kModified, script, options, 25);
  EXPECT_NE(lines.find("\"checkpoint\""), std::string::npos);
  const auto resumed =
      resume_campaign(inst, ProtocolKind::kModified, script, state, options);
  EXPECT_NE(lines.find("\"resume\""), std::string::npos);
  EXPECT_TRUE(resumed.reconverged());
}

// --- ibgp-ckpt-v1 format -----------------------------------------------------------

engine::EngineState sample_state() {
  const auto inst = topo::fig1a();
  FaultScriptConfig config;
  config.seed = 404;
  config.exit_flaps = 2;
  config.loss_prob = 0.15;
  config.dup_prob = 0.10;
  config.window_end = 200;
  const FaultScript script = make_fault_script(inst, config);
  CampaignOptions options;
  return campaign_checkpoint(inst, ProtocolKind::kModified, script, options, 40);
}

TEST(CkptFormat, DiskRoundTripResumesIdentically) {
  const auto inst = topo::fig1a();
  FaultScriptConfig config;
  config.seed = 404;
  config.exit_flaps = 2;
  config.loss_prob = 0.15;
  config.dup_prob = 0.10;
  config.window_end = 200;
  const FaultScript script = make_fault_script(inst, config);
  CampaignOptions options;
  const auto full = run_campaign(inst, ProtocolKind::kModified, script, options);

  const std::string path = testing::TempDir() + "ibgp_ckpt_roundtrip.json";
  const auto state = campaign_checkpoint(inst, ProtocolKind::kModified, script, options, 40);
  ASSERT_TRUE(ckpt::save_checkpoint(path, state));
  const auto loaded = ckpt::load_checkpoint(path);
  const auto resumed = resume_campaign(inst, ProtocolKind::kModified, script, loaded, options);
  expect_same_outcome(resumed, full);
  std::remove(path.c_str());
}

TEST(CkptFormat, RejectsWrongSchemaVersion) {
  const auto doc = ckpt::engine_state_json(sample_state());
  std::string text = doc.dump_compact();
  const auto pos = text.find("ibgp-ckpt-v1");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 12, "ibgp-ckpt-v2");
  try {
    (void)ckpt::parse_engine_state(parse_json(text));
    FAIL() << "expected schema rejection";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("schema"), std::string::npos) << e.what();
  }
}

TEST(CkptFormat, MissingFieldIsNamedInDiagnostic) {
  const auto doc = ckpt::engine_state_json(sample_state());
  std::string text = doc.dump_compact();
  // Renaming a required key makes it "missing"; the diagnostic must name it.
  const auto pos = text.find("\"mrai\"");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 6, "\"mraj\"");
  try {
    (void)ckpt::parse_engine_state(parse_json(text));
    FAIL() << "expected missing-field rejection";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("mrai"), std::string::npos) << e.what();
  }
}

TEST(CkptFormat, UnknownKeysWithinV1AreIgnored) {
  // Additive evolution: an extra key must not break older readers.
  const auto doc = ckpt::engine_state_json(sample_state());
  std::string text = doc.dump_compact();
  const auto pos = text.find("\"schema\"");
  ASSERT_NE(pos, std::string::npos);
  text.insert(pos, "\"ckpt_future_extension\": 1, ");
  const auto state = ckpt::parse_engine_state(parse_json(text));
  EXPECT_EQ(state.instance, sample_state().instance);
}

TEST(CkptFormat, TornFileYieldsNulloptNotCrash) {
  const auto doc = ckpt::engine_state_json(sample_state());
  const std::string text = doc.dump_compact();
  const std::string path = testing::TempDir() + "ibgp_ckpt_torn.json";
  {
    std::ofstream out(path, std::ios::binary);
    out << text.substr(0, text.size() / 2);  // torn mid-write
  }
  std::string error;
  const auto state = ckpt::try_load_checkpoint(path, &error);
  EXPECT_FALSE(state.has_value());
  EXPECT_FALSE(error.empty());
  std::remove(path.c_str());

  std::string missing_error;
  EXPECT_FALSE(ckpt::try_load_checkpoint(path + ".does-not-exist", &missing_error));
  EXPECT_FALSE(missing_error.empty());
  EXPECT_THROW((void)ckpt::load_checkpoint(path + ".does-not-exist"), std::runtime_error);
}

TEST(CkptFormat, RestoreRefusesMismatchedInstance) {
  const auto state = sample_state();  // captured over fig1a
  const auto other = topo::fig3();
  engine::EventEngine engine(other, ProtocolKind::kModified);
  EXPECT_THROW(engine.restore(state), std::runtime_error);
}

TEST(CkptFormat, RestoreRefusesMismatchedProtocol) {
  const auto inst = topo::fig1a();
  const auto state = sample_state();  // captured under kModified
  engine::EventEngine engine(inst, ProtocolKind::kStandard);
  EXPECT_THROW(engine.restore(state), std::runtime_error);
}

// --- supervisor --------------------------------------------------------------------

std::vector<SweepCell> make_cells(const core::Instance& inst, std::size_t count) {
  std::vector<SweepCell> cells;
  for (std::size_t i = 0; i < count; ++i) {
    FaultScriptConfig config;
    config.seed = 1000 + i;
    config.session_flaps = 1 + i % 2;
    config.exit_flaps = i % 3 == 0 ? 1 : 0;
    config.window_end = 150;
    SweepCell cell;
    cell.instance = &inst;
    cell.protocol = ProtocolKind::kModified;
    cell.script = make_fault_script(inst, config);
    cell.group = "ckpt-test";
    cell.seed = config.seed;
    cells.push_back(std::move(cell));
  }
  return cells;
}

// A script whose first action references a session that does not exist:
// apply_script throws std::invalid_argument deterministically.
FaultScript poison_script() {
  FaultScript script;
  script.seed = 666;
  FaultAction action;
  action.time = 5;
  action.kind = FaultAction::Kind::kSessionDown;
  action.a = 0;
  action.b = 0;  // no self-session exists anywhere
  script.actions.push_back(action);
  return script;
}

TEST(Supervisor, NonStrictSweepSurvivesThrowingCell) {
  // Regression for the old policy: one bad cell used to rethrow and discard
  // every completed cell.  Now it lands as a structured CellError and the
  // rest of the sweep completes.
  const auto inst = topo::fig1a();
  auto cells = make_cells(inst, 4);
  cells[1].script = poison_script();

  obs::MetricsRegistry registry;
  register_supervisor_metrics(registry);
  SweepOptions options;
  options.jobs = 2;
  options.metrics = &registry;
  const auto result = run_sweep(cells, options);
  ASSERT_EQ(result.cells.size(), 4u);
  ASSERT_TRUE(result.cells[1].failed());
  EXPECT_NE(result.cells[1].error->message.find("no such session"), std::string::npos);
  EXPECT_EQ(result.cells[1].error->attempts, 1u);  // deterministic: no retry
  EXPECT_FALSE(result.cells[1].error->timed_out);
  for (const std::size_t i : {0u, 2u, 3u}) {
    EXPECT_FALSE(result.cells[i].failed()) << i;
    EXPECT_TRUE(result.cells[i].healthy()) << i;
  }
  EXPECT_EQ(registry.counter_value("supervisor.cell_errors"), 1u);
  EXPECT_EQ(registry.counter_value("supervisor.cell_retries"), 0u);

  // The legacy entry point shares the non-strict default.
  const auto legacy = run_sweep(cells, 2);
  ASSERT_TRUE(legacy.cells[1].failed());
  EXPECT_EQ(legacy.fingerprint, result.fingerprint);

  // The sweep document carries the structured error record (v4 schema).
  const auto doc = sweep_json(cells, result, /*include_timing=*/false);
  const std::string text = doc.dump();
  EXPECT_NE(text.find("ibgp-sweep-v4"), std::string::npos);
  EXPECT_NE(text.find("no such session"), std::string::npos);
}

TEST(Supervisor, StrictModeRestoresAbortOnFirstError) {
  const auto inst = topo::fig1a();
  auto cells = make_cells(inst, 3);
  cells[0].script = poison_script();
  SweepOptions options;
  options.strict = true;
  EXPECT_THROW((void)run_sweep(cells, options), std::invalid_argument);
}

TEST(Supervisor, JournalResumeReproducesByteIdenticalSweepJson) {
  const auto inst = topo::fig1a();
  const auto cells = make_cells(inst, 5);

  // Ground truth: uninterrupted, unjournaled.
  const auto uninterrupted = run_sweep(cells, SweepOptions{});
  const std::string want = sweep_json(cells, uninterrupted, /*include_timing=*/false).dump();

  for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
    SCOPED_TRACE("jobs=" + std::to_string(jobs));
    const std::string dir =
        testing::TempDir() + "ibgp_journal_" + std::to_string(jobs);
    std::filesystem::remove_all(dir);

    SweepOptions journaled;
    journaled.jobs = jobs;
    journaled.journal_dir = dir;
    const auto first = run_sweep(cells, journaled);
    EXPECT_EQ(sweep_json(cells, first, false).dump(), want);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      EXPECT_TRUE(std::filesystem::exists(journal_cell_path(dir, i))) << i;
    }

    // Simulate a SIGKILL that landed after cells 0/2/4 were journaled.
    std::filesystem::remove(journal_cell_path(dir, 1));
    std::filesystem::remove(journal_cell_path(dir, 3));

    obs::MetricsRegistry registry;
    register_supervisor_metrics(registry);
    SweepOptions resume = journaled;
    resume.resume = true;
    resume.metrics = &registry;
    const auto resumed = run_sweep(cells, resume);
    EXPECT_EQ(resumed.fingerprint, uninterrupted.fingerprint);
    EXPECT_EQ(sweep_json(cells, resumed, false).dump(), want);
    EXPECT_EQ(registry.counter_value("supervisor.journal_hits"), 3u);
    EXPECT_EQ(registry.counter_value("supervisor.journal_writes"), 2u);
    std::filesystem::remove_all(dir);
  }
}

TEST(Supervisor, JournalIdentityMismatchForcesRerun) {
  const auto inst = topo::fig1a();
  auto cells = make_cells(inst, 2);
  const std::string dir = testing::TempDir() + "ibgp_journal_identity";
  std::filesystem::remove_all(dir);

  SweepOptions journaled;
  journaled.journal_dir = dir;
  (void)run_sweep(cells, journaled);
  ASSERT_TRUE(load_journal_cell(dir, 0, cells[0]).has_value());

  // Any identity drift — here the seed label — invalidates the entry.
  SweepCell drifted = cells[0];
  drifted.seed += 1;
  EXPECT_FALSE(load_journal_cell(dir, 0, drifted).has_value());
  SweepCell regrouped = cells[0];
  regrouped.group = "other-group";
  EXPECT_FALSE(load_journal_cell(dir, 0, regrouped).has_value());
  // Wrong index: the file exists but claims a different slot.
  EXPECT_FALSE(load_journal_cell(dir, 1, cells[0]).has_value());
  std::filesystem::remove_all(dir);
}

TEST(Supervisor, JournalCellJsonRoundTrips) {
  const auto inst = topo::fig1a();
  const auto cells = make_cells(inst, 1);
  const auto result = run_campaign(*cells[0].instance, cells[0].protocol,
                                   cells[0].script, cells[0].options);
  const auto doc = journal_cell_json(0, cells[0], result);
  const auto back = parse_journal_cell(parse_json(doc.dump()));
  EXPECT_EQ(back.trace_hash, result.trace_hash);
  EXPECT_EQ(back.last_fault_time, result.last_fault_time);
  EXPECT_EQ(back.settle_time, result.settle_time);
  EXPECT_EQ(back.run.deliveries, result.run.deliveries);
  EXPECT_EQ(back.run.final_best, result.run.final_best);
  EXPECT_EQ(back.run.decisions_by_rule, result.run.decisions_by_rule);
  EXPECT_EQ(back.invariants.violations, result.invariants.violations);
  EXPECT_EQ(back.continuity.blackhole_ticks, result.continuity.blackhole_ticks);
  EXPECT_EQ(back.continuity.churn_events.size(), result.continuity.churn_events.size());
}

TEST(Supervisor, DeadlineTimeoutBecomesStructuredErrorAfterRetries) {
  // A heavy cell against a 1 ms budget: the cooperative deadline fires,
  // the supervisor retries with doubled budgets, and the cell lands as a
  // timed_out CellError with the attempt count.  On a machine fast enough
  // to finish 50k+ deliveries inside 1 ms the premise evaporates — skip
  // rather than flake.
  const auto inst = topo::fig1a();
  FaultScriptConfig config;
  config.seed = 99;
  config.session_flaps = 1;
  config.window_end = 50;
  SweepCell cell;
  cell.instance = &inst;
  cell.protocol = ProtocolKind::kStandard;  // oscillates on fig1a: burns the budget
  cell.script = make_fault_script(inst, config);
  cell.options.max_deliveries = 2'000'000;
  cell.group = "deadline";
  cell.seed = config.seed;
  const std::vector<SweepCell> cells{cell};

  obs::MetricsRegistry registry;
  register_supervisor_metrics(registry);
  SweepOptions options;
  options.cell_deadline = std::chrono::milliseconds(1);
  options.max_retries = 2;
  options.metrics = &registry;
  const auto result = run_sweep(cells, options);
  if (!result.cells[0].failed()) {
    GTEST_SKIP() << "machine finished a 2M-delivery cell inside the deadline";
  }
  EXPECT_TRUE(result.cells[0].error->timed_out);
  EXPECT_EQ(result.cells[0].error->attempts, 3u);  // 1 try + 2 retries
  EXPECT_EQ(registry.counter_value("supervisor.cell_timeouts"), 3u);
  EXPECT_EQ(registry.counter_value("supervisor.cell_retries"), 2u);
  EXPECT_EQ(registry.counter_value("supervisor.cell_errors"), 1u);

  // Retry telemetry: the deadline doubles on every attempt, and the whole
  // history lands in the error row of the sweep JSON.
  const auto& tried = result.cells[0].error->deadlines_tried;
  ASSERT_EQ(tried.size(), 3u);
  EXPECT_EQ(tried[0], 1u);
  EXPECT_EQ(tried[1], 2u);
  EXPECT_EQ(tried[2], 4u);

  const auto doc = sweep_json(cells, result, /*include_timing=*/false);
  const auto parsed = parse_json(doc.dump());
  const auto& error_row = parsed.at("cells").as_array().at(0).at("error");
  const auto& json_tried = error_row.at("deadlines_tried").as_array();
  ASSERT_EQ(json_tried.size(), 3u);
  EXPECT_EQ(json_tried.at(0).as_uint(), 1u);
  EXPECT_EQ(json_tried.at(2).as_uint(), 4u);
}

}  // namespace
}  // namespace ibgp::fault
