// Event-driven engine tests: message-level convergence on the paper's
// figures, agreement with the synchronous engine where both converge,
// delay-script sensitivity (Fig 3 / Table 1 behavior), FIFO sessions, and
// E-BGP announce/withdraw dynamics.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <stdexcept>

#include "core/fixed_point.hpp"
#include "engine/activation.hpp"
#include "engine/event_engine.hpp"
#include "engine/oscillation.hpp"
#include "topo/figures.hpp"
#include "util/rng.hpp"

namespace ibgp::engine {
namespace {

using core::ProtocolKind;

// --- basic convergence -----------------------------------------------------------

TEST(EventEngine, Fig14StandardConvergesToLoopyConfig) {
  const auto inst = topo::fig14();
  EventEngine engine(inst, ProtocolKind::kStandard);
  engine.inject_all_exits();
  const auto result = engine.run();
  ASSERT_TRUE(result.converged);
  EXPECT_EQ(result.final_best[inst.find_node("c1")], inst.exits().find_by_name("r1"));
  EXPECT_EQ(result.final_best[inst.find_node("c2")], inst.exits().find_by_name("r2"));
}

TEST(EventEngine, Fig14ModifiedGivesCrossedChoices) {
  const auto inst = topo::fig14();
  EventEngine engine(inst, ProtocolKind::kModified);
  engine.inject_all_exits();
  const auto result = engine.run();
  ASSERT_TRUE(result.converged);
  EXPECT_EQ(result.final_best[inst.find_node("c1")], inst.exits().find_by_name("r2"));
  EXPECT_EQ(result.final_best[inst.find_node("c2")], inst.exits().find_by_name("r1"));
}

TEST(EventEngine, Fig1aStandardNeverDrains) {
  const auto inst = topo::fig1a();
  EventEngine engine(inst, ProtocolKind::kStandard);
  engine.inject_all_exits();
  const auto result = engine.run(/*max_deliveries=*/20000);
  EXPECT_FALSE(result.converged) << "persistent oscillation must keep messages in flight";
  EXPECT_GT(result.best_flips, 100u);
}

TEST(EventEngine, Fig1aModifiedConvergesToPrediction) {
  const auto inst = topo::fig1a();
  const auto prediction = core::predict_fixed_point(inst);
  EventEngine engine(inst, ProtocolKind::kModified);
  engine.inject_all_exits();
  const auto result = engine.run();
  ASSERT_TRUE(result.converged);
  for (NodeId v = 0; v < inst.node_count(); ++v) {
    const PathId expected = prediction.best[v] ? prediction.best[v]->path : kNoPath;
    EXPECT_EQ(result.final_best[v], expected) << inst.node_name(v);
  }
}

TEST(EventEngine, Fig13WaltonNeverDrainsButModifiedDoes) {
  const auto inst = topo::fig13();
  {
    EventEngine walton(inst, ProtocolKind::kWalton);
    walton.inject_all_exits();
    const auto result = walton.run(/*max_deliveries=*/30000);
    EXPECT_FALSE(result.converged);
  }
  {
    EventEngine modified(inst, ProtocolKind::kModified);
    modified.inject_all_exits();
    const auto result = modified.run();
    EXPECT_TRUE(result.converged);
  }
}

// --- agreement with the synchronous engine ----------------------------------------

TEST(EventEngine, AgreesWithSyncEngineOnConvergentFigures) {
  for (const auto& [name, inst] : topo::all_figures()) {
    // The modified protocol converges everywhere, to the same configuration
    // in both semantics.
    const auto prediction = core::predict_fixed_point(inst);
    EventEngine event(inst, ProtocolKind::kModified);
    event.inject_all_exits();
    const auto event_result = event.run();
    ASSERT_TRUE(event_result.converged) << name;
    auto rr = make_round_robin(inst.node_count());
    const auto sync_result = run_protocol(inst, ProtocolKind::kModified, *rr);
    ASSERT_EQ(sync_result.status, RunStatus::kConverged) << name;
    for (NodeId v = 0; v < inst.node_count(); ++v) {
      const PathId expected = prediction.best[v] ? prediction.best[v]->path : kNoPath;
      EXPECT_EQ(event_result.final_best[v], expected) << name << " node " << v;
      EXPECT_EQ(sync_result.final_best[v], expected) << name << " node " << v;
    }
  }
}

// --- delay sensitivity (the Fig 3 / Table 1 phenomenon) -----------------------------

TEST(EventEngine, Fig3InjectionOrderSelectsStableSolution) {
  const auto inst = topo::fig3();
  const PathId r3 = inst.exits().find_by_name("r3");
  const PathId r4 = inst.exits().find_by_name("r4");
  const PathId r5 = inst.exits().find_by_name("r5");
  const PathId r6 = inst.exits().find_by_name("r6");
  const NodeId b = inst.find_node("B");
  const NodeId c = inst.find_node("C");

  // Everything at once with perfectly symmetric delays: B and C flip in
  // lockstep forever — the "timing coincidence" of Section 3 made permanent
  // by symmetry.  (The synchronous-activation model converges here; the
  // message-level model is exactly where the paper demonstrates Table 1.)
  {
    EventEngine engine(inst, ProtocolKind::kStandard);
    engine.inject_all_exits(0);
    const auto result = engine.run(/*max_deliveries=*/20000);
    EXPECT_FALSE(result.converged);
    EXPECT_GT(result.best_flips, 100u);
  }

  // Staggered injection breaks the symmetry: the MED-0 pair locks in.
  {
    EventEngine engine(inst, ProtocolKind::kStandard);
    for (PathId p = 0; p < inst.exits().size(); ++p) engine.inject_exit(p, 5 * p);
    const auto result = engine.run();
    ASSERT_TRUE(result.converged);
    EXPECT_EQ(result.final_best[b], r3);
    EXPECT_EQ(result.final_best[c], r5);
  }

  // MED-0 pair injected LATE: the cheap exits (r4, r6) lock in first and
  // survive — a different stable solution, selected purely by timing.
  {
    EventEngine engine(inst, ProtocolKind::kStandard);
    for (const char* name : {"r1", "r2", "r4", "r6"}) {
      engine.inject_exit(inst.exits().find_by_name(name), 0);
    }
    engine.inject_exit(r3, 100);
    engine.inject_exit(r5, 100);
    const auto result = engine.run();
    ASSERT_TRUE(result.converged);
    EXPECT_EQ(result.final_best[b], r4);
    EXPECT_EQ(result.final_best[c], r6);
  }
}

TEST(EventEngine, Fig3ModifiedIgnoresInjectionOrder) {
  const auto inst = topo::fig3();
  const auto prediction = core::predict_fixed_point(inst);
  util::Xoshiro256 rng(404);
  for (int trial = 0; trial < 10; ++trial) {
    EventEngine engine(inst, ProtocolKind::kModified);
    for (PathId p = 0; p < inst.exits().size(); ++p) {
      engine.inject_exit(p, rng.below(200));
    }
    const auto result = engine.run();
    ASSERT_TRUE(result.converged);
    for (NodeId v = 0; v < inst.node_count(); ++v) {
      const PathId expected = prediction.best[v] ? prediction.best[v]->path : kNoPath;
      ASSERT_EQ(result.final_best[v], expected)
          << "trial " << trial << " node " << inst.node_name(v);
    }
  }
}

TEST(EventEngine, Fig3DelayedWithdrawCausesTransientFlaps) {
  // Steer into the (r3, r5) solution, then re-announce the cheap routes and
  // withdraw the MED-0 pair: B and C flap through intermediate choices —
  // transient oscillation, then stability.
  const auto inst = topo::fig3();
  EventEngine engine(inst, ProtocolKind::kStandard);
  for (const char* name : {"r1", "r2", "r3", "r5"}) {
    engine.inject_exit(inst.exits().find_by_name(name), 0);
  }
  engine.inject_exit(inst.exits().find_by_name("r4"), 50);
  engine.inject_exit(inst.exits().find_by_name("r6"), 50);
  engine.withdraw_exit(inst.exits().find_by_name("r3"), 120);
  engine.withdraw_exit(inst.exits().find_by_name("r5"), 180);
  const auto result = engine.run();
  ASSERT_TRUE(result.converged);
  EXPECT_EQ(result.final_best[inst.find_node("B")], inst.exits().find_by_name("r4"));
  EXPECT_EQ(result.final_best[inst.find_node("C")], inst.exits().find_by_name("r6"));
  EXPECT_GE(result.best_flips, 6u) << "withdraw churn should flap best routes";
  EXPECT_FALSE(engine.flap_log().empty());
}

TEST(EventEngine, RandomDelaysNeverChangeModifiedOutcome) {
  const auto inst = topo::fig2();
  const auto prediction = core::predict_fixed_point(inst);
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    auto rng = std::make_shared<util::Xoshiro256>(seed);
    EventEngine engine(inst, ProtocolKind::kModified,
                       [rng](NodeId, NodeId, std::uint64_t) -> SimTime {
                         return 1 + rng->below(50);
                       });
    engine.inject_all_exits();
    const auto result = engine.run();
    ASSERT_TRUE(result.converged) << "seed " << seed;
    for (NodeId v = 0; v < inst.node_count(); ++v) {
      const PathId expected = prediction.best[v] ? prediction.best[v]->path : kNoPath;
      ASSERT_EQ(result.final_best[v], expected) << "seed " << seed;
    }
  }
}

TEST(EventEngine, RandomDelaysCanChangeStandardOutcomeOnFig2) {
  // Fig 2 has two stable solutions; with randomized delays the standard
  // protocol must reach both across seeds (schedule-dependence).
  const auto inst = topo::fig2();
  std::set<std::vector<PathId>> outcomes;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    auto rng = std::make_shared<util::Xoshiro256>(seed);
    EventEngine engine(inst, ProtocolKind::kStandard,
                       [rng](NodeId, NodeId, std::uint64_t) -> SimTime {
                         return 1 + rng->below(20);
                       });
    engine.inject_all_exits();
    const auto result = engine.run(200000);
    if (result.converged) outcomes.insert(result.final_best);
  }
  EXPECT_GE(outcomes.size(), 2u) << "expected both stable solutions across seeds";
}

// --- E-BGP dynamics ------------------------------------------------------------------

TEST(EventEngine, WithdrawFlushesRoute) {
  const auto inst = topo::fig1a();
  const PathId r3 = inst.exits().find_by_name("r3");
  EventEngine engine(inst, ProtocolKind::kModified);
  engine.inject_all_exits(0);
  engine.withdraw_exit(r3, 1000);
  const auto result = engine.run();
  ASSERT_TRUE(result.converged);
  const auto prediction =
      core::predict_fixed_point(inst, std::vector<PathId>{
                                          inst.exits().find_by_name("r1"),
                                          inst.exits().find_by_name("r2")});
  for (NodeId v = 0; v < inst.node_count(); ++v) {
    const PathId expected = prediction.best[v] ? prediction.best[v]->path : kNoPath;
    EXPECT_EQ(result.final_best[v], expected) << inst.node_name(v);
  }
}

TEST(EventEngine, WithdrawFlushesEveryAdjRibIn) {
  // The operational analogue of Lemma 7.2: once an E-BGP withdrawal has
  // propagated, NO router may keep the path in any Adj-RIB-In, no session
  // may still carry it in an advertised set, and nobody selects it.
  const auto inst = topo::fig1a();
  const PathId r3 = inst.exits().find_by_name("r3");
  EventEngine engine(inst, ProtocolKind::kModified);
  engine.inject_all_exits(0);
  engine.withdraw_exit(r3, 1000);
  const auto result = engine.run();
  ASSERT_TRUE(result.converged);
  EXPECT_FALSE(engine.ebgp_live(r3));
  for (NodeId v = 0; v < inst.node_count(); ++v) {
    EXPECT_NE(result.final_best[v], r3) << inst.node_name(v);
    EXPECT_TRUE(engine.rib_in(v, r3).empty()) << inst.node_name(v);
    for (const NodeId peer : inst.sessions().peers(v)) {
      const auto sent = engine.advertised_to(v, peer);
      EXPECT_FALSE(std::binary_search(sent.begin(), sent.end(), r3))
          << inst.node_name(v) << " -> " << inst.node_name(peer);
    }
  }
}

TEST(EventEngine, WithdrawReinjectChurnNeverLeavesStaleState) {
  // E-BGP churn: flap r3 through several withdraw/re-inject rounds ending
  // withdrawn.  Every round's stale copies must flush; the survivors settle
  // on the fixed point over the remaining exits.
  const auto inst = topo::fig1a();
  const PathId r3 = inst.exits().find_by_name("r3");
  for (const ProtocolKind protocol : {ProtocolKind::kStandard, ProtocolKind::kWalton,
                                      ProtocolKind::kModified}) {
    EventEngine engine(inst, protocol);
    engine.inject_all_exits(0);
    for (SimTime t = 500; t < 900; t += 100) {
      engine.withdraw_exit(r3, t);
      engine.inject_exit(r3, t + 50);
    }
    engine.withdraw_exit(r3, 900);
    const auto result = engine.run(500000);
    // Standard I-BGP oscillates on fig1a only while r3 is announced (the
    // MED conflict needs it): with r3 finally gone, every protocol drains.
    ASSERT_TRUE(result.converged) << core::protocol_name(protocol);
    for (NodeId v = 0; v < inst.node_count(); ++v) {
      EXPECT_NE(result.final_best[v], r3) << inst.node_name(v);
      EXPECT_TRUE(engine.rib_in(v, r3).empty()) << inst.node_name(v);
    }
  }
}

TEST(EventEngine, ReinjectAfterWithdrawRestoresFullFixedPoint) {
  const auto inst = topo::fig1a();
  const PathId r3 = inst.exits().find_by_name("r3");
  EventEngine engine(inst, ProtocolKind::kModified);
  engine.inject_all_exits(0);
  engine.withdraw_exit(r3, 600);
  engine.inject_exit(r3, 900);
  const auto result = engine.run();
  ASSERT_TRUE(result.converged);
  const auto prediction = core::predict_fixed_point(inst);
  for (NodeId v = 0; v < inst.node_count(); ++v) {
    const PathId expected = prediction.best[v] ? prediction.best[v]->path : kNoPath;
    EXPECT_EQ(result.final_best[v], expected) << inst.node_name(v);
  }
}

TEST(EventEngine, SetMraiRejectedOnceEventsAreScheduled) {
  const auto inst = topo::fig1a();
  {
    EventEngine engine(inst, ProtocolKind::kModified);
    engine.inject_all_exits(0);
    EXPECT_THROW(engine.set_mrai(50), std::logic_error);
  }
  {
    EventEngine engine(inst, ProtocolKind::kModified);
    engine.set_mrai(50);  // before any event: fine
    engine.set_mrai(0);
    engine.inject_all_exits(0);
    EXPECT_NO_THROW(engine.run());
  }
  {
    // Processed events seal the engine too.
    EventEngine engine(inst, ProtocolKind::kModified);
    engine.run();
    EXPECT_THROW(engine.set_mrai(10), std::logic_error);
  }
}

TEST(EventEngine, NoRoutesMeansNoBest) {
  const auto inst = topo::fig1a();
  EventEngine engine(inst, ProtocolKind::kStandard);
  const auto result = engine.run();
  ASSERT_TRUE(result.converged);
  for (const PathId best : result.final_best) EXPECT_EQ(best, kNoPath);
  EXPECT_EQ(result.deliveries, 0u);
}

TEST(EventEngine, UpdateCountsAreTracked) {
  const auto inst = topo::fig14();
  EventEngine engine(inst, ProtocolKind::kStandard);
  engine.inject_all_exits();
  const auto result = engine.run();
  ASSERT_TRUE(result.converged);
  EXPECT_GT(result.updates_sent, 0u);
  EXPECT_EQ(result.updates_sent, engine.updates_sent());
  EXPECT_GE(result.deliveries, result.updates_sent);
}

TEST(EventEngine, FifoPreservedUnderShrinkingDelays) {
  // A later message with a smaller delay must not overtake an earlier one on
  // the same session: with shrinking delays, an early announce and its later
  // withdraw travel the same session, and an overtake would leave a stale
  // route in the receiver's Adj-RIB-In forever.  Run the modified protocol
  // (guaranteed to drain) and require the exact closed-form fixed point —
  // any FIFO violation shows up as a stale-route deviation.
  const auto inst = topo::fig2();
  const auto prediction = core::predict_fixed_point(inst);
  std::uint64_t call = 0;
  EventEngine engine(inst, ProtocolKind::kModified,
                     [&call](NodeId, NodeId, std::uint64_t) -> SimTime {
                       return call++ < 4 ? 100 : 1;  // early messages slow
                     });
  engine.inject_all_exits();
  const auto result = engine.run(200000);
  ASSERT_TRUE(result.converged);
  for (NodeId v = 0; v < inst.node_count(); ++v) {
    const PathId expected = prediction.best[v] ? prediction.best[v]->path : kNoPath;
    EXPECT_EQ(result.final_best[v], expected) << inst.node_name(v);
  }
}

TEST(EventEngine, VoidedInFlightMessageNeverResurfacesAfterReUp) {
  // Epoch-semantics regression: an UPDATE in flight when its session resets
  // must be voided — it must NOT deliver after the session re-establishes,
  // even though its scheduled delivery time falls inside the new session's
  // lifetime.  Timeline (delay 50): announce sent at t=0 would land at 50;
  // the session flaps down at 10 / up at 20, so the resync replay lands at
  // 70.  Stepping one event at a time, the RIB must still be empty right
  // after the voided 50-tick delivery is consumed.
  const auto inst = topo::fig2();
  const PathId p0 = 0;
  const NodeId exit_point = inst.exits()[p0].exit_point;
  const NodeId peer = inst.sessions().peers(exit_point)[0];
  EventEngine engine(inst, ProtocolKind::kModified,
                     [](NodeId, NodeId, std::uint64_t) -> SimTime { return 50; });
  engine.inject_exit(p0, 0);
  engine.schedule_session_down(exit_point, peer, 10);
  engine.schedule_session_up(exit_point, peer, 20);

  bool checked_after_void = false;
  while (true) {
    const auto step = engine.run(/*max_deliveries=*/1);
    if (step.deliveries_voided > 0 && !checked_after_void) {
      checked_after_void = true;
      const auto holders = engine.rib_in(peer, p0);
      EXPECT_FALSE(std::binary_search(holders.begin(), holders.end(), exit_point))
          << "a voided pre-reset announce populated the re-established session";
    }
    if (step.converged) break;
  }
  ASSERT_TRUE(checked_after_void) << "scenario failed to void any delivery";

  // The resync replay (not the voided original) is what fills the RIB.
  const auto holders = engine.rib_in(peer, p0);
  EXPECT_TRUE(std::binary_search(holders.begin(), holders.end(), exit_point));
  const std::vector<PathId> live{p0};
  const auto prediction = core::predict_fixed_point(inst, live);
  for (NodeId v = 0; v < inst.node_count(); ++v) {
    const PathId expected = prediction.best[v] ? prediction.best[v]->path : kNoPath;
    EXPECT_EQ(engine.best_path(v), expected) << inst.node_name(v);
  }
}

namespace {
// Duplicates every message; used to stress per-session FIFO below.
class DuplicateEverything final : public FaultInjector {
 public:
  MessageFate classify(NodeId, NodeId, std::uint64_t) override {
    return MessageFate::kDuplicate;
  }
  void on_drop(EventEngine&, NodeId, NodeId, SimTime) override {}
};
}  // namespace

TEST(EventEngine, DuplicatedMessagesRespectPerSessionFifo) {
  // FIFO regression under duplication: every message is duplicated and the
  // per-message delay oscillates, so a duplicate drawn with a small delay
  // constantly tries to overtake earlier traffic on its session.  Combined
  // with announce/withdraw churn, any overtake resurrects a withdrawn route
  // or drops a live one — both show up as a deviation from the closed-form
  // fixed point.
  const auto inst = topo::fig2();
  const auto prediction = core::predict_fixed_point(inst);
  EventEngine engine(inst, ProtocolKind::kModified,
                     [](NodeId, NodeId, std::uint64_t seq) -> SimTime {
                       return (seq % 7) * 5 + 1;  // non-monotonic per session
                     });
  DuplicateEverything injector;
  engine.set_fault_injector(&injector);
  engine.inject_all_exits(0);
  engine.withdraw_exit(0, 40);
  engine.inject_exit(0, 80);
  const auto result = engine.run(200000);
  ASSERT_TRUE(result.converged);
  EXPECT_GT(result.messages_duplicated, 0u);
  for (NodeId v = 0; v < inst.node_count(); ++v) {
    const PathId expected = prediction.best[v] ? prediction.best[v]->path : kNoPath;
    EXPECT_EQ(result.final_best[v], expected) << inst.node_name(v);
  }
}

TEST(EventEngine, FlapLogRecordsTransitions) {
  const auto inst = topo::fig14();
  EventEngine engine(inst, ProtocolKind::kStandard);
  engine.inject_all_exits();
  engine.run();
  ASSERT_FALSE(engine.flap_log().empty());
  const auto& first = engine.flap_log().front();
  EXPECT_EQ(first.old_best, kNoPath);
  EXPECT_NE(first.new_best, kNoPath);
}

}  // namespace
}  // namespace ibgp::engine
