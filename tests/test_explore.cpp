// Tests for the adversarial policy-space explorer: spec genotypes, the
// mutation menu, the delta-debugging minimizer, coverage-guided search, and
// the satellite regression that a step-budget-truncated run is never
// classified as oscillating.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>

#include "analysis/finder.hpp"
#include "confed/engine.hpp"
#include "explore/corpus.hpp"
#include "explore/explorer.hpp"
#include "explore/minimize.hpp"
#include "explore/mutate.hpp"
#include "explore/spec.hpp"
#include "topo/dsl.hpp"
#include "topo/figures.hpp"
#include "topo/random.hpp"
#include "util/rng.hpp"

namespace ibgp::explore {
namespace {

// --- spec <-> instance ---------------------------------------------------------------

TEST(Spec, RoundTripsFig1a) {
  const auto inst = topo::fig1a();
  const auto spec = spec_of(inst);
  const auto rebuilt = build(spec);
  EXPECT_EQ(topo::write_topo(rebuilt), topo::write_topo(inst));
}

TEST(Spec, RoundTripsRandomInstances) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    topo::RandomConfig config;
    config.clusters = 2 + seed % 3;
    config.max_clients = 2;
    const auto inst = topo::random_instance(config, seed);
    const auto rebuilt = build(spec_of(inst));
    EXPECT_EQ(topo::write_topo(rebuilt), topo::write_topo(inst)) << seed;
  }
}

TEST(Spec, TryBuildRejectsBrokenSpecs) {
  InstanceSpec spec;
  spec.nodes.push_back({.label = "a", .cluster = 0, .reflector = true});
  spec.links.push_back({0, 5, 1});  // dangling node id
  EXPECT_FALSE(try_build(spec).has_value());

  spec.links.clear();
  spec.exits.push_back({.name = "x", .at = 9, .next_as = 1});  // dangling exit
  EXPECT_FALSE(try_build(spec).has_value());
}

TEST(Spec, RemoveNodeRemapsReferences) {
  auto spec = spec_of(topo::fig1a());
  const std::size_t nodes_before = spec.nodes.size();
  const std::size_t exits_before = spec.exits.size();
  // Remove node 0; everything referring to higher ids shifts down.
  remove_node(spec, 0);
  EXPECT_EQ(spec.nodes.size(), nodes_before - 1);
  for (const auto& link : spec.links) {
    EXPECT_LT(link.a, spec.nodes.size());
    EXPECT_LT(link.b, spec.nodes.size());
  }
  for (const auto& exit : spec.exits) EXPECT_LT(exit.at, spec.nodes.size());
  EXPECT_LE(spec.exits.size(), exits_before);
  // Clusters stay dense after removal.
  std::set<netsim::ClusterId> clusters;
  for (const auto& node : spec.nodes) clusters.insert(node.cluster);
  for (netsim::ClusterId c = 0; c < clusters.size(); ++c) EXPECT_TRUE(clusters.count(c));
}

TEST(Spec, HybridSpecMapsConfederation) {
  const auto confed = confed::rfc3345_confederation();
  const auto spec = hybrid_spec(confed);
  ASSERT_EQ(spec.nodes.size(), confed.node_count());
  const auto inst = try_build(spec);
  ASSERT_TRUE(inst.has_value());
  // Sub-AS partition becomes the cluster partition.
  for (NodeId u = 0; u < confed.node_count(); ++u) {
    for (NodeId v = 0; v < confed.node_count(); ++v) {
      EXPECT_EQ(confed.same_sub_as(u, v), inst->clusters().same_cluster(u, v));
    }
  }
  // Every cluster got at least one reflector (or build would have thrown),
  // and the exits carried over.
  EXPECT_EQ(inst->exits().size(), confed.exits().size());
}

// --- mutation ------------------------------------------------------------------------

TEST(Mutate, DeterministicPerSeed) {
  const auto parent = spec_of(topo::fig1a());
  const auto a = mutate(parent, 42);
  const auto b = mutate(parent, 42);
  const auto ia = try_build(a);
  const auto ib = try_build(b);
  ASSERT_EQ(ia.has_value(), ib.has_value());
  if (ia) EXPECT_EQ(topo::write_topo(*ia), topo::write_topo(*ib));
}

TEST(Mutate, ProducesMostlyValidVariedOffspring) {
  const auto parent = spec_of(topo::fig1a());
  std::size_t valid = 0;
  std::set<std::string> distinct;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const auto child = mutate(parent, seed);
    if (const auto inst = try_build(child)) {
      ++valid;
      distinct.insert(topo::write_topo(*inst));
    }
  }
  EXPECT_GE(valid, 150u);     // the menu rarely breaks structure
  EXPECT_GE(distinct.size(), 50u);  // and actually explores
}

TEST(Mutate, ReachesPolicyKnobs) {
  const auto parent = spec_of(topo::fig1a());
  bool saw_route_map = false, saw_override = false, saw_community = false;
  for (std::uint64_t seed = 1; seed <= 300; ++seed) {
    const auto child = mutate(parent, seed);
    saw_route_map |= !child.route_maps.empty();
    saw_override |= !child.policy.med_overrides.empty();
    for (const auto& exit : child.exits) saw_community |= exit.communities != 0;
  }
  EXPECT_TRUE(saw_route_map);
  EXPECT_TRUE(saw_override);
  EXPECT_TRUE(saw_community);
}

// --- satellite: truncation is never oscillation --------------------------------------

TEST(Classify, StepBudgetExhaustionIsNotOscillation) {
  // Fig 1(a) provably cycles with a real budget; with a starvation budget
  // the verdict must be kStepLimit — truncated, NOT oscillating.
  const auto inst = topo::fig1a();
  const auto full = analysis::classify(inst, core::ProtocolKind::kStandard, 2000);
  EXPECT_TRUE(full.oscillates());
  EXPECT_FALSE(full.truncated());

  const auto starved = analysis::classify(inst, core::ProtocolKind::kStandard, 2);
  EXPECT_FALSE(starved.oscillates());
  EXPECT_TRUE(starved.truncated());
  EXPECT_TRUE(starved.indeterminate());
  EXPECT_EQ(starved.round_robin, engine::RunStatus::kStepLimit);
  EXPECT_EQ(starved.synchronous, engine::RunStatus::kStepLimit);
}

TEST(Classify, MixedTruncationStillReportsProvenCycle) {
  // oscillates() may hold alongside truncated() only when the OTHER
  // schedule proved a cycle.
  analysis::ConvergenceSignature sig;
  sig.round_robin = engine::RunStatus::kCycleDetected;
  sig.synchronous = engine::RunStatus::kStepLimit;
  EXPECT_TRUE(sig.oscillates());
  EXPECT_TRUE(sig.truncated());
  EXPECT_FALSE(sig.indeterminate());
}

TEST(Explorer, StarvedBudgetYieldsNoHits) {
  // With a 1-step budget nothing can be proven to cycle, so the explorer
  // must record truncations and zero hits — never misreading a truncated
  // run as a counterexample.
  ExploreConfig config;
  config.budget = 60;
  config.batch = 20;
  config.max_steps = 1;
  config.max_deliveries = 500;
  config.random_seeds = 4;
  config.hybrid_seeds = 1;
  const auto result = explore(config);
  EXPECT_EQ(result.hits.size(), 0u);
  EXPECT_GT(result.stats.truncated_runs, 0u);
}

// --- minimizer -----------------------------------------------------------------------

TEST(Minimize, StripsJunkFromInflatedOscillator) {
  // Inflate Fig 1(a) with irrelevant structure, then check the minimizer
  // strips it while preserving the exact signature.
  auto spec = spec_of(topo::fig1a());
  const std::size_t true_nodes = spec.nodes.size();
  const std::size_t true_exits = spec.exits.size();

  // Junk: an extra cluster with client, an unused exit, a pointless
  // route-map on the new client, and a MED override for an unused AS.
  const auto base = static_cast<NodeId>(spec.nodes.size());
  const auto cluster = static_cast<netsim::ClusterId>(1 +
      std::max_element(spec.nodes.begin(), spec.nodes.end(),
                       [](const NodeSpec& a, const NodeSpec& b) {
                         return a.cluster < b.cluster;
                       })->cluster);
  spec.nodes.push_back({.label = "junkR", .cluster = cluster, .reflector = true,
                        .bgp_id = 90});
  spec.nodes.push_back({.label = "junkC", .cluster = cluster, .reflector = false,
                        .bgp_id = 91});
  spec.links.push_back({base, 0, 7});
  spec.links.push_back({base, static_cast<NodeId>(base + 1), 3});
  spec.exits.push_back({.name = "junkX", .at = static_cast<NodeId>(base + 1),
                        .next_as = 3, .med = 1, .local_pref = 50, .ebgp_peer = 1999});
  spec.route_maps.push_back(
      {.node = static_cast<NodeId>(base + 1),
       .clause = {.match_as = 3, .set_local_pref = 60}});
  spec.policy.med_overrides.push_back({.as = 3, .mode = bgp::MedMode::kIgnore});

  const auto inflated = build(spec);
  MinimizeGoal goal;
  goal.protocol = core::ProtocolKind::kStandard;
  goal.signature = analysis::classify(inflated, goal.protocol, 2000);
  goal.max_steps = 2000;
  ASSERT_TRUE(goal.signature.oscillates());

  MinimizeStats stats;
  const auto minimized = minimize(spec, goal, &stats);
  EXPECT_GT(stats.candidates_tried, 0u);
  EXPECT_GT(stats.accepted, 0u);
  // All the junk is gone (the true core may shrink further, never grow).
  EXPECT_LE(minimized.nodes.size(), true_nodes);
  EXPECT_LE(minimized.exits.size(), true_exits);
  EXPECT_TRUE(minimized.route_maps.empty());
  EXPECT_TRUE(minimized.policy.med_overrides.empty());
  // And the minimized instance still shows the exact signature.
  const auto inst = try_build(minimized);
  ASSERT_TRUE(inst.has_value());
  EXPECT_TRUE(satisfies(*inst, goal));
}

TEST(Minimize, ReturnsInputWhenPreconditionFails) {
  // A converging instance cannot satisfy an oscillation goal: minimize()
  // must hand the spec back unchanged rather than shrink toward nonsense.
  auto spec = spec_of(topo::fig1a());
  MinimizeGoal goal;
  goal.protocol = core::ProtocolKind::kModified;  // converges on fig1a
  goal.signature.round_robin = engine::RunStatus::kCycleDetected;
  goal.signature.synchronous = engine::RunStatus::kCycleDetected;
  goal.max_steps = 2000;
  const auto out = minimize(spec, goal);
  EXPECT_EQ(out.nodes.size(), spec.nodes.size());
  EXPECT_EQ(out.exits.size(), spec.exits.size());
}

// --- explorer end-to-end -------------------------------------------------------------

TEST(Explorer, FindsAndMinimizesOscillators) {
  ExploreConfig config;
  config.seed = 7;
  config.budget = 300;
  config.batch = 50;
  config.max_steps = 2000;
  config.max_deliveries = 10000;
  config.random_seeds = 6;
  config.hybrid_seeds = 2;
  const auto result = explore(config);
  EXPECT_EQ(result.stats.evaluated, 300u);
  EXPECT_GT(result.stats.new_coverage, 0u);
  EXPECT_GT(result.stats.hits_raw, 0u);
  ASSERT_FALSE(result.hits.empty());
  EXPECT_EQ(result.stats.theorem_violations, 0u);

  std::set<std::uint64_t> fingerprints;
  for (const auto& hit : result.hits) {
    EXPECT_TRUE(fingerprints.insert(hit.fingerprint).second) << "dedup failed";
    const auto inst = try_build(hit.spec);
    ASSERT_TRUE(inst.has_value());
    // Hits really oscillate (proven cycle, not truncation)...
    EXPECT_TRUE(hit.signature.oscillates());
    const auto replay =
        analysis::classify(*inst, core::ProtocolKind::kStandard, config.max_steps);
    EXPECT_EQ(replay.round_robin, hit.signature.round_robin);
    EXPECT_EQ(replay.synchronous, hit.signature.synchronous);
    // ...and the paper's modified protocol settles every one of them.
    EXPECT_TRUE(analysis::classify(*inst, core::ProtocolKind::kModified, config.max_steps)
                    .converges_always_tested());
  }
}

TEST(Explorer, DeterministicAcrossJobs) {
  ExploreConfig config;
  config.seed = 11;
  config.budget = 150;
  config.batch = 50;
  config.max_steps = 1000;
  config.max_deliveries = 5000;
  config.random_seeds = 4;
  config.hybrid_seeds = 1;
  config.jobs = 1;
  const auto serial = explore(config);
  config.jobs = 8;
  const auto parallel = explore(config);
  ASSERT_EQ(serial.hits.size(), parallel.hits.size());
  for (std::size_t i = 0; i < serial.hits.size(); ++i) {
    EXPECT_EQ(serial.hits[i].fingerprint, parallel.hits[i].fingerprint);
  }
  EXPECT_EQ(serial.stats.evaluated, parallel.stats.evaluated);
  EXPECT_EQ(serial.stats.new_coverage, parallel.stats.new_coverage);
  EXPECT_EQ(serial.stats.hits_raw, parallel.stats.hits_raw);
}

TEST(Explorer, ResumedRunEqualsUninterruptedRun) {
  // The checkpoint contract: an interrupted search resumed from disk must be
  // bit-for-bit the run that was never interrupted.  Run budget 128 with a
  // checkpoint, then resume with budget 256, and compare against a straight
  // budget-256 run.
  ExploreConfig config;
  config.seed = 11;
  config.batch = 50;
  config.max_steps = 1000;
  config.max_deliveries = 5000;
  config.random_seeds = 4;
  config.hybrid_seeds = 1;

  config.budget = 256;
  const auto uninterrupted = explore(config);

  const std::string path =
      std::string(testing::TempDir()) + "/explore_resume_ckpt.json";
  std::remove(path.c_str());
  config.checkpoint_path = path;
  config.budget = 128;
  config.resume = false;
  const auto partial = explore(config);
  EXPECT_LE(partial.stats.evaluated, 128u + config.batch);

  config.budget = 256;
  config.resume = true;
  const auto resumed = explore(config);

  EXPECT_EQ(resumed.stats.evaluated, uninterrupted.stats.evaluated);
  EXPECT_EQ(resumed.stats.invalid, uninterrupted.stats.invalid);
  EXPECT_EQ(resumed.stats.new_coverage, uninterrupted.stats.new_coverage);
  EXPECT_EQ(resumed.stats.hits_raw, uninterrupted.stats.hits_raw);
  EXPECT_EQ(resumed.stats.truncated_runs, uninterrupted.stats.truncated_runs);
  ASSERT_EQ(resumed.hits.size(), uninterrupted.hits.size());
  for (std::size_t i = 0; i < resumed.hits.size(); ++i) {
    EXPECT_EQ(resumed.hits[i].fingerprint, uninterrupted.hits[i].fingerprint);
    EXPECT_EQ(resumed.hits[i].med_induced, uninterrupted.hits[i].med_induced);
    EXPECT_EQ(resumed.hits[i].hybrid, uninterrupted.hits[i].hybrid);
  }
  std::remove(path.c_str());
}

TEST(Explorer, MismatchedCheckpointStartsFresh) {
  // A checkpoint written under a different seed must be ignored (identity
  // guard), not loaded into a differently-seeded search.
  ExploreConfig config;
  config.seed = 11;
  config.budget = 60;
  config.batch = 20;
  config.max_steps = 500;
  config.max_deliveries = 2000;
  config.random_seeds = 2;
  config.hybrid_seeds = 1;

  const std::string path =
      std::string(testing::TempDir()) + "/explore_mismatch_ckpt.json";
  std::remove(path.c_str());
  config.checkpoint_path = path;
  const auto first = explore(config);
  (void)first;

  config.seed = 12;  // identity mismatch: checkpoint must be discarded
  config.resume = true;
  const auto fresh = explore(config);
  config.checkpoint_path.clear();
  config.resume = false;
  const auto reference = explore(config);
  EXPECT_EQ(fresh.stats.evaluated, reference.stats.evaluated);
  EXPECT_EQ(fresh.stats.new_coverage, reference.stats.new_coverage);
  EXPECT_EQ(fresh.stats.hits_raw, reference.stats.hits_raw);
  ASSERT_EQ(fresh.hits.size(), reference.hits.size());
  for (std::size_t i = 0; i < fresh.hits.size(); ++i) {
    EXPECT_EQ(fresh.hits[i].fingerprint, reference.hits[i].fingerprint);
  }
  std::remove(path.c_str());
}

TEST(Explorer, TornCheckpointStartsFresh) {
  // Half a checkpoint (torn write) must never crash or poison the search.
  ExploreConfig config;
  config.seed = 5;
  config.budget = 40;
  config.batch = 20;
  config.max_steps = 500;
  config.max_deliveries = 2000;
  config.random_seeds = 2;
  config.hybrid_seeds = 1;

  const std::string path =
      std::string(testing::TempDir()) + "/explore_torn_ckpt.json";
  {
    std::ofstream out(path, std::ios::trunc);
    out << "{\"schema\": \"ibgp-explore-ckpt-v1\", \"round\": 3, \"fron";
  }
  config.checkpoint_path = path;
  config.resume = true;
  const auto resumed = explore(config);
  config.checkpoint_path.clear();
  config.resume = false;
  const auto reference = explore(config);
  EXPECT_EQ(resumed.stats.evaluated, reference.stats.evaluated);
  EXPECT_EQ(resumed.stats.hits_raw, reference.stats.hits_raw);
  std::remove(path.c_str());
}

// --- mutated-spec DSL round-trip (byte identity under the new knobs) -----------------

TEST(Explorer, MutantTopoRoundTripsByteIdentical) {
  const auto parent = spec_of(topo::fig1a());
  std::size_t checked = 0;
  for (std::uint64_t seed = 1; seed <= 120; ++seed) {
    const auto child = mutate(parent, seed);
    const auto inst = try_build(child);
    if (!inst) continue;
    ++checked;
    const std::string text = topo::write_topo(*inst);
    EXPECT_EQ(topo::write_topo(topo::parse_topo(text)), text) << "seed " << seed;
  }
  EXPECT_GT(checked, 80u);
}

}  // namespace
}  // namespace ibgp::explore
