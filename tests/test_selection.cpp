// The BGP route-selection procedure (Section 2 / Fig 6 / Fig 10): every rule
// in isolation, MED semantics, both rule orderings, and the structural
// properties behind the paper's analysis — without MED the preference is a
// total preorder; with MED, independence-of-irrelevant-alternatives fails
// (the root cause of every oscillation in the paper).

#include <gtest/gtest.h>

#include <vector>

#include "bgp/exit_table.hpp"
#include "bgp/selection.hpp"
#include "netsim/physical_graph.hpp"
#include "netsim/shortest_paths.hpp"
#include "util/rng.hpp"

namespace ibgp::bgp {
namespace {

struct Fixture {
  netsim::PhysicalGraph graph;
  ExitTable table;
  std::unique_ptr<netsim::ShortestPaths> igp;

  // Line 0-1-2-3 with unit costs; evaluating node is usually 0.
  Fixture() : graph(4) {
    graph.add_link(0, 1, 1);
    graph.add_link(1, 2, 1);
    graph.add_link(2, 3, 1);
  }

  PathId add(NodeId exit_point, AsId as, Med med, LocalPref lp = 100,
             std::uint32_t len = 3, Cost exit_cost = 0, BgpId peer = 0) {
    ExitPath path;
    path.exit_point = exit_point;
    path.next_as = as;
    path.med = med;
    path.local_pref = lp;
    path.as_path_length = len;
    path.exit_cost = exit_cost;
    path.ebgp_peer = peer == 0 ? static_cast<BgpId>(500 + table.size()) : peer;
    return table.add(std::move(path));
  }

  void finalize() { igp = std::make_unique<netsim::ShortestPaths>(graph); }

  std::optional<RouteView> best(NodeId at, std::vector<Candidate> candidates,
                                SelectionPolicy policy = {}) {
    if (!igp) finalize();
    return choose_best(table, *igp, at, candidates, policy);
  }
};

// --- rule 1: LOCAL-PREF ------------------------------------------------------

TEST(Selection, Rule1HighestLocalPrefWins) {
  Fixture f;
  const auto lo = f.add(1, 1, 0, 90);
  const auto hi = f.add(3, 2, 0, 200);  // farther but higher LOCAL-PREF
  const auto best = f.best(0, {{lo, 10}, {hi, 11}});
  ASSERT_TRUE(best);
  EXPECT_EQ(best->path, hi);
}

// --- rule 2: AS-path length --------------------------------------------------

TEST(Selection, Rule2ShorterAsPathWins) {
  Fixture f;
  const auto longer = f.add(1, 1, 0, 100, 2);
  const auto shorter = f.add(3, 2, 0, 100, 1);
  const auto best = f.best(0, {{longer, 10}, {shorter, 11}});
  ASSERT_TRUE(best);
  EXPECT_EQ(best->path, shorter);
}

TEST(Selection, Rule2OnlyAmongMaxLocalPref) {
  Fixture f;
  const auto short_but_low = f.add(1, 1, 0, 90, 1);
  const auto long_but_high = f.add(3, 2, 0, 100, 9);
  const auto best = f.best(0, {{short_but_low, 10}, {long_but_high, 11}});
  ASSERT_TRUE(best);
  EXPECT_EQ(best->path, long_but_high);
}

// --- rule 3: MED -------------------------------------------------------------

TEST(Selection, Rule3MedEliminatesWithinSameAs) {
  Fixture f;
  const auto near_but_high_med = f.add(1, 7, 5);
  const auto far_but_low_med = f.add(3, 7, 1);
  const auto best = f.best(0, {{near_but_high_med, 10}, {far_but_low_med, 11}});
  ASSERT_TRUE(best);
  EXPECT_EQ(best->path, far_but_low_med) << "lower MED must win within one AS";
}

TEST(Selection, Rule3MedNotComparedAcrossAses) {
  Fixture f;
  const auto near_high_med = f.add(1, 1, 5);
  const auto far_low_med = f.add(3, 2, 0);
  const auto best = f.best(0, {{near_high_med, 10}, {far_low_med, 11}});
  ASSERT_TRUE(best);
  EXPECT_EQ(best->path, near_high_med) << "different AS: MED ignored, IGP cost decides";
}

TEST(Selection, Rule3AlwaysCompareMedMode) {
  Fixture f;
  const auto near_high_med = f.add(1, 1, 5);
  const auto far_low_med = f.add(3, 2, 0);
  SelectionPolicy policy;
  policy.med = MedMode::kAlwaysCompare;
  const auto best = f.best(0, {{near_high_med, 10}, {far_low_med, 11}}, policy);
  ASSERT_TRUE(best);
  EXPECT_EQ(best->path, far_low_med) << "always-compare-med: one global MED group";
}

TEST(Selection, Rule3IgnoreMedMode) {
  Fixture f;
  const auto near_high_med = f.add(1, 7, 5);
  const auto far_low_med = f.add(3, 7, 0);
  SelectionPolicy policy;
  policy.med = MedMode::kIgnore;
  const auto best = f.best(0, {{near_high_med, 10}, {far_low_med, 11}}, policy);
  ASSERT_TRUE(best);
  EXPECT_EQ(best->path, near_high_med) << "MEDs disabled: IGP cost decides";
}

TEST(Selection, Rule3MinimumPerGroupSurvives) {
  Fixture f;
  const auto a0 = f.add(1, 1, 3);
  const auto a1 = f.add(2, 1, 1);  // min of AS1
  const auto b0 = f.add(3, 2, 7);  // alone in AS2, survives with any MED
  const auto survivors = choose_survivors(f.table, std::vector<PathId>{a0, a1, b0});
  EXPECT_EQ(survivors, (std::vector<PathId>{a1, b0}));
}

// --- rules 4/5: E-BGP preference and IGP metric --------------------------------

TEST(Selection, Rule4EbgpBeatsIbgpUnderDefaultOrder) {
  Fixture f;
  const auto own = f.add(0, 1, 0, 100, 3, /*exit_cost=*/50);  // expensive but E-BGP
  const auto remote = f.add(1, 2, 0);                         // metric 1, I-BGP
  const auto best = f.best(0, {{own, 99}, {remote, 10}});
  ASSERT_TRUE(best);
  EXPECT_EQ(best->path, own);
  EXPECT_TRUE(best->is_ebgp);
}

TEST(Selection, Rule4IgpCostFirstOrderPrefersCheaper) {
  Fixture f;
  const auto own = f.add(0, 1, 0, 100, 3, /*exit_cost=*/50);
  const auto remote = f.add(1, 2, 0);
  SelectionPolicy policy;
  policy.order = RuleOrder::kIgpCostFirst;
  const auto best = f.best(0, {{own, 99}, {remote, 10}}, policy);
  ASSERT_TRUE(best);
  EXPECT_EQ(best->path, remote) << "RFC ordering: IGP cost before E-BGP preference";
}

TEST(Selection, IgpCostFirstTieBrokenByEbgp) {
  Fixture f;
  const auto own = f.add(0, 1, 0, 100, 3, /*exit_cost=*/1);
  const auto remote = f.add(1, 2, 0);  // metric 1 == own's exit cost
  SelectionPolicy policy;
  policy.order = RuleOrder::kIgpCostFirst;
  const auto best = f.best(0, {{own, 99}, {remote, 10}}, policy);
  ASSERT_TRUE(best);
  EXPECT_EQ(best->path, own);
}

TEST(Selection, Rule5MinimumMetricAmongIbgp) {
  Fixture f;
  const auto near = f.add(1, 1, 0);
  const auto far = f.add(3, 2, 0);
  const auto best = f.best(0, {{near, 10}, {far, 11}});
  ASSERT_TRUE(best);
  EXPECT_EQ(best->path, near);
  EXPECT_EQ(best->metric, 1);
}

TEST(Selection, ExitCostAddsToMetric) {
  Fixture f;
  const auto cheap_link_far_exit = f.add(2, 1, 0, 100, 3, 0);   // metric 2
  const auto near_costly_exit = f.add(1, 2, 0, 100, 3, 5);      // metric 6
  const auto best = f.best(0, {{cheap_link_far_exit, 10}, {near_costly_exit, 11}});
  ASSERT_TRUE(best);
  EXPECT_EQ(best->path, cheap_link_far_exit);
}

// --- rule 6: BGP identifier ---------------------------------------------------

TEST(Selection, Rule6LowestLearnedFromWins) {
  Fixture f;
  const auto a = f.add(1, 1, 0);
  const auto b = f.add(1, 2, 0);  // same exit point: identical metric
  const auto best = f.best(0, {{a, 42}, {b, 7}});
  ASSERT_TRUE(best);
  EXPECT_EQ(best->path, b);
}

TEST(Selection, DuplicateLearnedFromFallsBackToPathId) {
  Fixture f;
  const auto a = f.add(1, 1, 0);
  const auto b = f.add(1, 2, 0);
  const auto best = f.best(0, {{a, 7}, {b, 7}});
  ASSERT_TRUE(best);
  EXPECT_EQ(best->path, std::min(a, b));
}

// --- edge cases ----------------------------------------------------------------

TEST(Selection, EmptyCandidatesGiveNothing) {
  Fixture f;
  f.add(1, 1, 0);
  EXPECT_FALSE(f.best(0, {}));
}

TEST(Selection, UnreachableExitPointSkipped) {
  Fixture f;
  f.graph = netsim::PhysicalGraph(4);  // no links: nothing reachable
  const auto own = f.add(0, 1, 0);
  const auto remote = f.add(3, 2, 0);
  const auto best = f.best(0, {{own, 10}, {remote, 11}});
  ASSERT_TRUE(best);
  EXPECT_EQ(best->path, own) << "own exit survives; unreachable remote dropped";
  EXPECT_FALSE(f.best(1, {{remote, 11}}));
}

TEST(Selection, ChooseSurvivorsIsNodeIndependent) {
  // Choose^B ignores metrics and learnedFrom entirely — key to Lemma 7.4.
  Fixture f;
  const auto a = f.add(1, 1, 2);
  const auto b = f.add(3, 1, 1);
  const auto c = f.add(2, 2, 9);
  const auto survivors = choose_survivors(f.table, std::vector<PathId>{a, b, c});
  EXPECT_EQ(survivors, (std::vector<PathId>{b, c}));
}

TEST(Selection, ChooseSurvivorsEmptyInput) {
  Fixture f;
  EXPECT_TRUE(choose_survivors(f.table, std::vector<PathId>{}).empty());
}

TEST(Selection, ExplanationRecordsStages) {
  Fixture f;
  const auto a = f.add(1, 1, 5, 100);
  const auto b = f.add(2, 1, 0, 100);
  const auto c = f.add(3, 2, 0, 90);
  f.finalize();
  const auto explanation = explain_selection(
      f.table, *f.igp, 0, std::vector<Candidate>{{a, 1}, {b, 2}, {c, 3}}, {});
  ASSERT_TRUE(explanation.best);
  EXPECT_EQ(explanation.best->path, b);
  ASSERT_EQ(explanation.stages.size(), 5u);
  EXPECT_EQ(explanation.stages[0].second.size(), 3u);  // input
  EXPECT_EQ(explanation.stages[1].second.size(), 2u);  // rule 1 kills c (lp 90)
  EXPECT_EQ(explanation.stages[3].second.size(), 1u);  // MED kills a
}

// --- the IIA story ----------------------------------------------------------

TEST(Selection, MedViolatesIndependenceOfIrrelevantAlternatives) {
  // The Fig 1(a) core: between r1 and r2 alone, r2 wins; adding r3 (which
  // itself loses) flips the winner to r1.  This is impossible for any
  // single-valued ranking and is exactly why SPVP-style fixed-preference
  // models cannot express MED (Section 4).
  Fixture g;
  const auto s1 = g.add(2, 1, 0);      // AS1, metric 2
  const auto s2 = g.add(1, 2, 10);     // AS2, metric 1 -> pairwise winner
  const auto s3 = g.add(3, 2, 0);      // AS2, MED 0, metric 3 -> kills s2
  const auto pairwise = g.best(0, {{s1, 10}, {s2, 11}});
  ASSERT_TRUE(pairwise);
  ASSERT_EQ(pairwise->path, s2);
  const auto with_extra = g.best(0, {{s1, 10}, {s2, 11}, {s3, 12}});
  ASSERT_TRUE(with_extra);
  EXPECT_EQ(with_extra->path, s1) << "adding a losing alternative flipped the winner";
}

TEST(Selection, WithoutMedSelectionIsIiaConsistent) {
  // Property: with MedMode::kIgnore, the winner among any subset containing
  // the full-set winner is that same winner (choose_best is induced by a
  // total preorder).  Randomized over many path sets.
  util::Xoshiro256 rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    Fixture f;
    std::vector<Candidate> all;
    const int n = 2 + static_cast<int>(rng.below(5));
    for (int i = 0; i < n; ++i) {
      const auto exit_point = static_cast<NodeId>(rng.below(4));
      const auto p = f.add(exit_point, static_cast<AsId>(1 + rng.below(3)),
                           static_cast<Med>(rng.below(4)), 100, 3,
                           static_cast<Cost>(rng.below(3)));
      all.push_back({p, static_cast<BgpId>(10 + i)});
    }
    SelectionPolicy policy;
    policy.med = MedMode::kIgnore;
    const auto full = f.best(0, all, policy);
    ASSERT_TRUE(full);
    // Any subset containing the winner must keep the same winner.
    for (int mask = 1; mask < (1 << n); ++mask) {
      std::vector<Candidate> subset;
      bool has_winner = false;
      for (int i = 0; i < n; ++i) {
        if (mask & (1 << i)) {
          subset.push_back(all[i]);
          has_winner |= (all[i].path == full->path);
        }
      }
      if (!has_winner) continue;
      const auto sub = f.best(0, subset, policy);
      ASSERT_TRUE(sub);
      ASSERT_EQ(sub->path, full->path) << "IIA violated without MED (trial " << trial << ")";
    }
  }
}

}  // namespace
}  // namespace ibgp::bgp
