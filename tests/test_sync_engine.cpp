// Synchronous-engine tests: the paper's config(t) semantics, the narrated
// Fig 1(a) oscillation trace step by step, withdrawal flushing (Lemma 7.2),
// crash/restart, activation-sequence generators, and run()/cycle detection.

#include <gtest/gtest.h>

#include <set>

#include "core/fixed_point.hpp"
#include "engine/activation.hpp"
#include "engine/oscillation.hpp"
#include "engine/sync_engine.hpp"
#include "topo/figures.hpp"

namespace ibgp::engine {
namespace {

using core::ProtocolKind;

// --- activation sequences ------------------------------------------------------

TEST(Activation, RoundRobinCyclesSingletons) {
  auto seq = make_round_robin(3);
  EXPECT_EQ(seq->period(), 3u);
  EXPECT_EQ(seq->next(), (ActivationSet{0}));
  EXPECT_EQ(seq->next(), (ActivationSet{1}));
  EXPECT_EQ(seq->next(), (ActivationSet{2}));
  EXPECT_EQ(seq->next(), (ActivationSet{0}));
}

TEST(Activation, FullSetIsEverybodyEveryStep) {
  auto seq = make_full_set(4);
  EXPECT_EQ(seq->period(), 1u);
  EXPECT_EQ(seq->next(), (ActivationSet{0, 1, 2, 3}));
  EXPECT_EQ(seq->next(), (ActivationSet{0, 1, 2, 3}));
}

TEST(Activation, RandomFairCoversAllWithinPeriod) {
  auto seq = make_random_fair(5, 42);
  for (int round = 0; round < 20; ++round) {
    std::set<NodeId> seen;
    for (std::size_t i = 0; i < seq->period(); ++i) {
      for (const NodeId v : seq->next()) seen.insert(v);
    }
    ASSERT_EQ(seen.size(), 5u) << "fairness window violated in round " << round;
  }
}

TEST(Activation, RandomFairDeterministicPerSeed) {
  auto a = make_random_fair(6, 9);
  auto b = make_random_fair(6, 9);
  for (int i = 0; i < 50; ++i) ASSERT_EQ(a->next(), b->next());
}

TEST(Activation, RandomSubsetsNeverEmptyAndFair) {
  auto seq = make_random_subsets(4, 7);
  std::vector<std::size_t> last_seen(4, 0);
  for (std::size_t step = 1; step <= 200; ++step) {
    const auto set = seq->next();
    ASSERT_FALSE(set.empty());
    ASSERT_TRUE(std::is_sorted(set.begin(), set.end()));
    for (const NodeId v : set) last_seen[v] = step;
    for (NodeId v = 0; v < 4; ++v) {
      ASSERT_LE(step - last_seen[v], seq->period()) << "node " << v << " starved";
    }
  }
}

TEST(Activation, ScriptedPrefixThenRoundRobin) {
  auto seq = make_scripted(3, {{2}, {0, 1}});
  EXPECT_EQ(seq->next(), (ActivationSet{2}));
  EXPECT_EQ(seq->next(), (ActivationSet{0, 1}));
  EXPECT_EQ(seq->next(), (ActivationSet{0}));  // round-robin tail
}

TEST(Activation, ScriptedRejectsBadPrefix) {
  EXPECT_THROW(make_scripted(3, {{}}), std::invalid_argument);
  EXPECT_THROW(make_scripted(3, {{7}}), std::invalid_argument);
}

// --- the Fig 1(a) narrative, step by step ---------------------------------------

TEST(SyncEngine, Fig1aNarratedCycle) {
  const auto inst = topo::fig1a();
  const NodeId a = inst.find_node("A");
  const NodeId b = inst.find_node("B");
  const PathId r1 = inst.exits().find_by_name("r1");
  const PathId r2 = inst.exits().find_by_name("r2");
  const PathId r3 = inst.exits().find_by_name("r3");

  SyncEngine engine(inst, ProtocolKind::kStandard);
  // Let the clients pin their exits first.
  engine.step({inst.find_node("c1"), inst.find_node("c2"), inst.find_node("c3")});

  // "Route reflector A selects route r2 (lower IGP metric)".
  engine.step({a});
  EXPECT_EQ(engine.best_path(a), r2);
  // "...and route reflector B selects route r3" (it has not heard r2 yet
  // in the sequential order; activate B now that A advertised r2).
  engine.step({b});
  EXPECT_EQ(engine.best_path(b), r3);  // r3 MED-kills r2

  // "A receives r3 and selects r1".
  engine.step({a});
  EXPECT_EQ(engine.best_path(a), r1);

  // "B receives r1 and selects r1 over r3 (lower IGP metric)".
  engine.step({b});
  EXPECT_EQ(engine.best_path(b), r1);

  // "A selects r2 over r1 (lower IGP metric)" — r3 was withdrawn by B.
  engine.step({a});
  EXPECT_EQ(engine.best_path(a), r2);

  // "B selects r3 over r2 (lower MED) and the cycle begins again."
  engine.step({b});
  EXPECT_EQ(engine.best_path(b), r3);
}

TEST(SyncEngine, Fig1aClientsPinnedForever) {
  const auto inst = topo::fig1a();
  SyncEngine engine(inst, ProtocolKind::kStandard);
  auto rr = make_round_robin(inst.node_count());
  for (int i = 0; i < 100; ++i) engine.step(rr->next());
  EXPECT_EQ(engine.best_path(inst.find_node("c1")), inst.exits().find_by_name("r1"));
  EXPECT_EQ(engine.best_path(inst.find_node("c2")), inst.exits().find_by_name("r2"));
  EXPECT_EQ(engine.best_path(inst.find_node("c3")), inst.exits().find_by_name("r3"));
}

// --- run() and oscillation detection --------------------------------------------

TEST(Run, Fig1aStandardCyclesUnderBothSchedules) {
  const auto inst = topo::fig1a();
  for (const bool synchronous : {false, true}) {
    auto seq = synchronous ? make_full_set(inst.node_count())
                           : make_round_robin(inst.node_count());
    const auto outcome = run_protocol(inst, ProtocolKind::kStandard, *seq);
    EXPECT_EQ(outcome.status, RunStatus::kCycleDetected);
    EXPECT_GT(outcome.cycle_length, 0u);
    EXPECT_GT(outcome.best_flips, 0u);
  }
}

TEST(Run, Fig1aModifiedConvergesToPrediction) {
  const auto inst = topo::fig1a();
  const auto prediction = core::predict_fixed_point(inst);
  for (const bool synchronous : {false, true}) {
    auto seq = synchronous ? make_full_set(inst.node_count())
                           : make_round_robin(inst.node_count());
    const auto outcome = run_protocol(inst, ProtocolKind::kModified, *seq);
    ASSERT_EQ(outcome.status, RunStatus::kConverged);
    for (NodeId v = 0; v < inst.node_count(); ++v) {
      const PathId expected = prediction.best[v] ? prediction.best[v]->path : kNoPath;
      EXPECT_EQ(outcome.final_best[v], expected) << "node " << v;
    }
  }
}

TEST(Run, ConvergedRunReportsQuiescence) {
  const auto inst = topo::fig14();
  auto rr = make_round_robin(inst.node_count());
  const auto outcome = run_protocol(inst, ProtocolKind::kStandard, *rr);
  ASSERT_EQ(outcome.status, RunStatus::kConverged);
  EXPECT_LE(outcome.quiescent_since, outcome.steps);
  EXPECT_GT(outcome.steps, 0u);
}

TEST(Run, StepLimitReportedWithoutCycleDetection) {
  const auto inst = topo::fig1a();
  SyncEngine engine(inst, ProtocolKind::kStandard);
  auto rr = make_round_robin(inst.node_count());
  RunLimits limits;
  limits.max_steps = 50;
  limits.detect_cycles = false;
  const auto outcome = run(engine, *rr, limits);
  EXPECT_EQ(outcome.status, RunStatus::kStepLimit);
  EXPECT_EQ(outcome.steps, 50u);
}

// --- Lemma 7.2: withdrawn routes flush -------------------------------------------

TEST(SyncEngine, WithdrawnExitFlushesEverywhere) {
  const auto inst = topo::fig1a();
  const PathId r3 = inst.exits().find_by_name("r3");
  SyncEngine engine(inst, ProtocolKind::kModified);
  auto rr = make_round_robin(inst.node_count());
  RunLimits limits;
  const auto first = run(engine, *rr, limits);
  ASSERT_EQ(first.status, RunStatus::kConverged);
  // r3 is in everyone's PossibleExits now (it is in S').
  bool seen = false;
  for (NodeId v = 0; v < inst.node_count(); ++v) {
    const auto ids = engine.possible_ids(v);
    seen |= std::binary_search(ids.begin(), ids.end(), r3);
  }
  ASSERT_TRUE(seen);

  engine.withdraw_exit(r3);
  const auto second = run(engine, *rr, limits);
  ASSERT_EQ(second.status, RunStatus::kConverged);
  for (NodeId v = 0; v < inst.node_count(); ++v) {
    const auto ids = engine.possible_ids(v);
    EXPECT_FALSE(std::binary_search(ids.begin(), ids.end(), r3))
        << "withdrawn exit still visible at node " << v << " (Lemma 7.2 violated)";
  }
  // And the new fixed point matches the prediction for the reduced set.
  const auto prediction = core::predict_fixed_point(inst, engine.announced_exits());
  for (NodeId v = 0; v < inst.node_count(); ++v) {
    const PathId expected = prediction.best[v] ? prediction.best[v]->path : kNoPath;
    EXPECT_EQ(engine.best_path(v), expected);
  }
}

TEST(SyncEngine, ReannouncedExitReturns) {
  const auto inst = topo::fig1a();
  const PathId r3 = inst.exits().find_by_name("r3");
  SyncEngine engine(inst, ProtocolKind::kModified);
  auto rr = make_round_robin(inst.node_count());
  engine.withdraw_exit(r3);
  run(engine, *rr, {});
  engine.announce_exit(r3);
  const auto outcome = run(engine, *rr, {});
  ASSERT_EQ(outcome.status, RunStatus::kConverged);
  const auto prediction = core::predict_fixed_point(inst);
  for (NodeId v = 0; v < inst.node_count(); ++v) {
    const PathId expected = prediction.best[v] ? prediction.best[v]->path : kNoPath;
    EXPECT_EQ(engine.best_path(v), expected);
  }
}

// --- crash / restart ---------------------------------------------------------------

TEST(SyncEngine, CrashRestartReachesSameFixedPoint) {
  const auto inst = topo::fig2();
  const auto prediction = core::predict_fixed_point(inst);
  SyncEngine engine(inst, ProtocolKind::kModified);
  auto rr = make_round_robin(inst.node_count());
  run(engine, *rr, {});

  for (NodeId victim = 0; victim < inst.node_count(); ++victim) {
    engine.crash_node(victim);
    const auto outcome = run(engine, *rr, {});
    ASSERT_EQ(outcome.status, RunStatus::kConverged) << "victim " << victim;
    for (NodeId v = 0; v < inst.node_count(); ++v) {
      const PathId expected = prediction.best[v] ? prediction.best[v]->path : kNoPath;
      ASSERT_EQ(engine.best_path(v), expected)
          << "fixed point changed after crash of node " << victim;
    }
  }
}

TEST(SyncEngine, CrashedNodeStateCleared) {
  const auto inst = topo::fig2();
  SyncEngine engine(inst, ProtocolKind::kStandard);
  auto rr = make_round_robin(inst.node_count());
  run(engine, *rr, {});
  engine.crash_node(0);
  EXPECT_FALSE(engine.best(0).has_value());
  EXPECT_TRUE(engine.possible(0).empty());
  EXPECT_TRUE(engine.advertised(0).empty());
}

// --- misc engine mechanics -----------------------------------------------------------

TEST(SyncEngine, StateHashDistinguishesConfigurations) {
  const auto inst = topo::fig1a();
  SyncEngine a(inst, ProtocolKind::kStandard);
  SyncEngine b(inst, ProtocolKind::kStandard);
  EXPECT_EQ(a.state_hash(), b.state_hash());
  a.step({inst.find_node("c1")});
  EXPECT_NE(a.state_hash(), b.state_hash());
  b.step({inst.find_node("c1")});
  EXPECT_EQ(a.state_hash(), b.state_hash());
}

TEST(SyncEngine, StepReturnsFalseWhenNothingChanges) {
  const auto inst = topo::fig14();
  SyncEngine engine(inst, ProtocolKind::kStandard);
  auto rr = make_round_robin(inst.node_count());
  run(engine, *rr, {});
  ActivationSet all;
  for (NodeId v = 0; v < inst.node_count(); ++v) all.push_back(v);
  EXPECT_FALSE(engine.step(all));
}

TEST(SyncEngine, FlipCountersTrackChanges) {
  const auto inst = topo::fig1a();
  SyncEngine engine(inst, ProtocolKind::kStandard);
  auto rr = make_round_robin(inst.node_count());
  for (int i = 0; i < 60; ++i) engine.step(rr->next());
  EXPECT_GT(engine.best_flips(), 0u);
  const auto by_node = engine.best_flips_by_node();
  std::size_t sum = 0;
  for (const auto count : by_node) sum += count;
  EXPECT_EQ(sum, engine.best_flips());
  // The oscillation is between A and B; clients settle after one flip each.
  EXPECT_GT(by_node[inst.find_node("A")], 2u);
  EXPECT_GT(by_node[inst.find_node("B")], 2u);
}

TEST(SyncEngine, DescribeBestUsesNames) {
  const auto inst = topo::fig14();
  auto rr = make_round_robin(inst.node_count());
  const auto outcome = run_protocol(inst, ProtocolKind::kStandard, *rr);
  const auto text = describe_best(inst, outcome.final_best);
  EXPECT_NE(text.find("RR1->r1"), std::string::npos);
  EXPECT_NE(text.find("c2->r2"), std::string::npos);
}

}  // namespace
}  // namespace ibgp::engine
