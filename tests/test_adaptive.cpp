// Tests for the adaptive (oscillation-triggered) deployment of the modified
// protocol — the Section 10 future-work extension.

#include <gtest/gtest.h>

#include "analysis/finder.hpp"
#include "analysis/forwarding.hpp"
#include "engine/activation.hpp"
#include "engine/adaptive.hpp"
#include "engine/oscillation.hpp"
#include "topo/figures.hpp"
#include "topo/random.hpp"

namespace ibgp::engine {
namespace {

TEST(Adaptive, ConvergentInstanceNeedsNoUpgrades) {
  const auto inst = topo::fig14();
  auto rr = make_round_robin(inst.node_count());
  const auto result = run_adaptive(inst, *rr);
  EXPECT_TRUE(result.converged);
  EXPECT_TRUE(result.upgraded.empty());
  EXPECT_FALSE(result.escalated_all);
}

TEST(Adaptive, Fig1aConvergesWithPartialUpgrade) {
  const auto inst = topo::fig1a();
  auto rr = make_round_robin(inst.node_count());
  const auto result = run_adaptive(inst, *rr);
  ASSERT_TRUE(result.converged);
  EXPECT_FALSE(result.upgraded.empty()) << "an oscillator must trigger detection";
  EXPECT_LT(result.upgraded.size(), inst.node_count())
      << "only the flapping core should be upgraded";
  // The flapping nodes are the reflectors A and B.
  for (const NodeId v : result.upgraded) {
    EXPECT_TRUE(inst.clusters().is_reflector(v)) << inst.node_name(v);
  }
}

TEST(Adaptive, Fig13Converges) {
  const auto inst = topo::fig13();
  auto rr = make_round_robin(inst.node_count());
  const auto result = run_adaptive(inst, *rr);
  ASSERT_TRUE(result.converged);
  EXPECT_FALSE(result.upgraded.empty());
}

TEST(Adaptive, FinalStateIsOscillationFreeFixedPoint) {
  // After convergence the reached configuration must be a genuine fixed
  // point: re-running the engine with the same per-node protocols changes
  // nothing.  Verify via a fresh engine replaying the upgrades.
  const auto inst = topo::fig1a();
  auto rr = make_round_robin(inst.node_count());
  const auto result = run_adaptive(inst, *rr);
  ASSERT_TRUE(result.converged);

  SyncEngine replay(inst, core::ProtocolKind::kStandard);
  for (const NodeId v : result.upgraded) {
    replay.set_node_protocol(v, core::ProtocolKind::kModified);
  }
  auto rr2 = make_round_robin(inst.node_count());
  RunLimits limits;
  const auto outcome = run(replay, *rr2, limits);
  ASSERT_EQ(outcome.status, RunStatus::kConverged);
  EXPECT_EQ(outcome.final_best, result.final_best);
}

TEST(Adaptive, UpgradeMetadataConsistent) {
  const auto inst = topo::fig1a();
  auto rr = make_round_robin(inst.node_count());
  const auto result = run_adaptive(inst, *rr);
  ASSERT_EQ(result.upgraded.size(), result.upgrade_step.size());
  for (const auto step : result.upgrade_step) EXPECT_LE(step, result.steps);
}

TEST(Adaptive, AlwaysSettlesOnRandomOscillators) {
  topo::RandomConfig config;
  config.clusters = 3;
  config.max_clients = 2;
  config.exits = 5;
  config.max_med = 3;
  config.extra_link_prob = 0.3;
  std::size_t oscillators = 0;
  for (std::uint64_t seed = 500; seed < 700 && oscillators < 12; ++seed) {
    const auto inst = topo::random_instance(config, seed);
    // The controller runs round-robin, so only round-robin cycling counts
    // (synchronous-only oscillators settle sequentially without upgrades).
    const auto sig = analysis::classify(inst, core::ProtocolKind::kStandard, 4000);
    if (sig.round_robin != engine::RunStatus::kCycleDetected) continue;
    ++oscillators;
    auto rr = make_round_robin(inst.node_count());
    const auto result = run_adaptive(inst, *rr);
    EXPECT_TRUE(result.converged) << "seed " << seed;
    EXPECT_FALSE(result.upgraded.empty()) << "seed " << seed;
  }
  EXPECT_GE(oscillators, 5u) << "ensemble too tame to exercise the controller";
}

TEST(Adaptive, HighThresholdEventuallyEscalates) {
  // With an absurd threshold no node ever triggers individually; the global
  // fallback must fire and still deliver convergence.
  const auto inst = topo::fig1a();
  auto rr = make_round_robin(inst.node_count());
  AdaptiveOptions options;
  options.flap_threshold = 1000000;
  options.escalation_rounds = 2;
  const auto result = run_adaptive(inst, *rr, options);
  ASSERT_TRUE(result.converged);
  EXPECT_TRUE(result.escalated_all);
  EXPECT_EQ(result.upgraded.size(), inst.node_count());
}

}  // namespace
}  // namespace ibgp::engine
