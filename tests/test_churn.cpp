// IGP topology churn tests — runtime link-cost/link-failure faults with
// deterministic SPF recomputation and deflection-aware continuity.
//
// The paper prices every route by its IGP shortest-path distance (Section
// 4), so the underlay is a decision input: these suites verify that link
// faults swap in memoized ShortestPaths epochs deterministically, that
// sessions riding a dead shortest path sever and resume with reachability,
// that the post-quiescence IGP-metric currency invariant holds on random
// topologies under churn, that reverting the underlay restores the original
// stable state (pointer-identical base epoch included), and that the MRAI
// hold-down machinery cannot leak a stale scheduled advertisement across a
// session reset (the flush-epoch regression).

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "analysis/continuity.hpp"
#include "analysis/invariants.hpp"
#include "engine/event_engine.hpp"
#include "fault/campaign.hpp"
#include "fault/script.hpp"
#include "fault/sweep.hpp"
#include "topo/figures.hpp"
#include "topo/random.hpp"

namespace ibgp {
namespace {

using core::ProtocolKind;
using engine::EventEngine;
using fault::FaultAction;

// --- epoch swaps -------------------------------------------------------------------

TEST(Churn, CostChangeSwapsEpochAndRepricesEveryRoute) {
  const auto inst = topo::fig1a();
  const NodeId a = inst.find_node("A");
  const NodeId b = inst.find_node("B");
  EventEngine engine(inst, ProtocolKind::kModified);
  engine.inject_all_exits(0);
  // Cheapening the A—B mesh link from 6 to 1 re-prices every route that
  // crosses it without a single session fault.
  engine.schedule_link_cost_change(a, b, 1, 1000);
  const auto result = engine.run();
  ASSERT_TRUE(result.converged);
  EXPECT_EQ(result.igp_epoch_swaps, 1u);
  EXPECT_EQ(result.faults_applied, 1u);

  // A fresh epoch is in force: not the instance's base shortest paths.
  EXPECT_NE(engine.igp_handle(), inst.igp_handle());
  EXPECT_EQ(engine.igp().cost(a, b), 1u);
  ASSERT_EQ(engine.igp_log().size(), 1u);
  EXPECT_EQ(engine.igp_log()[0].time, 1000u);
  EXPECT_NE(engine.igp_log()[0].fingerprint, inst.igp().fingerprint());

  // The fault log records the metric, and the metric-currency invariant
  // (check 5) holds against the NEW distances for every selected route.
  ASSERT_EQ(engine.fault_log().size(), 1u);
  EXPECT_EQ(engine.fault_log()[0].cost, 1u);
  const auto report = analysis::check_invariants(engine);
  EXPECT_TRUE(report.clean()) << analysis::describe_report(report);
  for (NodeId v = 0; v < inst.node_count(); ++v) {
    const auto& best = engine.best(v);
    ASSERT_TRUE(best.has_value()) << inst.node_name(v);
    const auto& exit = inst.exits()[best->path];
    EXPECT_EQ(best->metric, engine.igp().cost(v, exit.exit_point) + exit.exit_cost)
        << inst.node_name(v);
  }
}

TEST(Churn, RevertingChurnRestoresTheBaseEpochPointerIdentically) {
  const auto inst = topo::fig1a();
  const NodeId a = inst.find_node("A");
  const NodeId b = inst.find_node("B");
  const NodeId c1 = inst.find_node("c1");

  EventEngine baseline(inst, ProtocolKind::kModified);
  baseline.inject_all_exits(0);
  const auto base_result = baseline.run();
  ASSERT_TRUE(base_result.converged);

  EventEngine engine(inst, ProtocolKind::kModified);
  engine.inject_all_exits(0);
  engine.schedule_link_cost_change(a, b, 1, 1000);  // jolt ...
  engine.schedule_link_cost_change(a, b, 6, 1100);  // ... and revert
  engine.schedule_link_down(a, c1, 1200);           // fail ...
  engine.schedule_link_up(a, c1, 1300);             // ... and repair
  const auto result = engine.run();
  ASSERT_TRUE(result.converged);
  EXPECT_EQ(result.igp_epoch_swaps, 4u);

  // Back on the base cost vector, the SPF cache returns the instance's own
  // base epoch — the very same object, not an equal recomputation.
  EXPECT_EQ(engine.igp_handle(), inst.igp_handle());
  // Cache contents: base (seeded) + the jolted vector + the failed vector.
  EXPECT_EQ(inst.igp_epoch_count(), 3u);

  // And the original stable state is restored exactly.
  EXPECT_EQ(result.final_best, base_result.final_best);
  const auto report = analysis::check_invariants(engine);
  EXPECT_TRUE(report.clean()) << analysis::describe_report(report);
}

TEST(Churn, NoOpLinkFaultsInstallNoEpochAndLogNothing) {
  const auto inst = topo::fig1a();
  const NodeId a = inst.find_node("A");
  const NodeId b = inst.find_node("B");
  const NodeId c3 = inst.find_node("c3");
  EventEngine engine(inst, ProtocolKind::kModified);
  engine.inject_all_exits(0);
  engine.schedule_link_cost_change(a, b, 6, 1000);  // current cost: no-op
  engine.schedule_link_down(a, c3, 1100);
  engine.schedule_link_down(a, c3, 1150);  // already down: no-op
  engine.schedule_link_up(a, c3, 1200);
  engine.schedule_link_up(a, c3, 1250);  // already up: no-op
  const auto result = engine.run();
  ASSERT_TRUE(result.converged);
  EXPECT_EQ(result.faults_applied, 2u);  // only the effective down + up
  EXPECT_EQ(result.igp_epoch_swaps, 2u);
  EXPECT_EQ(engine.igp_handle(), inst.igp_handle());
}

TEST(Churn, ScheduleValidationRejectsBadLinksAndMetrics) {
  const auto inst = topo::fig1a();
  const NodeId a = inst.find_node("A");
  const NodeId c1 = inst.find_node("c1");
  const NodeId c2 = inst.find_node("c2");
  EventEngine engine(inst, ProtocolKind::kModified);
  // c1—c2 is not a physical link in Fig 1(a).
  EXPECT_THROW(engine.schedule_link_down(c1, c2, 10), std::invalid_argument);
  EXPECT_THROW(engine.schedule_link_up(c1, c2, 10), std::invalid_argument);
  EXPECT_THROW(engine.schedule_link_cost_change(c1, c2, 3, 10), std::invalid_argument);
  // IGP metrics must be positive and finite.
  EXPECT_THROW(engine.schedule_link_cost_change(a, c1, 0, 10), std::invalid_argument);
  EXPECT_THROW(engine.schedule_link_cost_change(a, c1, kInfCost, 10),
               std::invalid_argument);
}

// --- partitions sever sessions -----------------------------------------------------

TEST(Churn, PartitionSeversIgpUnreachableSessions) {
  // Downing A—c3 and B—c3 isolates c3 from the IGP: the B—c3 I-BGP session
  // rides a now-dead shortest path and must sever exactly as a session
  // fault would.  c3 keeps its own E-BGP exit r3; everyone else must stop
  // selecting it.
  const auto inst = topo::fig1a();
  const NodeId a = inst.find_node("A");
  const NodeId b = inst.find_node("B");
  const NodeId c3 = inst.find_node("c3");
  EventEngine engine(inst, ProtocolKind::kModified);
  engine.inject_all_exits(0);
  engine.schedule_link_down(a, c3, 1000);
  engine.schedule_link_down(b, c3, 1000);
  const auto result = engine.run();
  ASSERT_TRUE(result.converged);
  EXPECT_FALSE(engine.session_up(b, c3));
  EXPECT_FALSE(engine.igp().reachable(b, c3));

  const PathId r3 = 2;  // third registered exit, at c3
  ASSERT_EQ(inst.exits()[r3].exit_point, c3);
  EXPECT_EQ(result.final_best[c3], r3);  // own E-BGP route survives
  for (const NodeId v : {a, b, inst.find_node("c1"), inst.find_node("c2")}) {
    EXPECT_NE(result.final_best[v], r3) << inst.node_name(v);
  }
  const auto report = analysis::check_invariants(engine);
  EXPECT_TRUE(report.clean()) << analysis::describe_report(report);
}

TEST(Churn, LinkUpRestoresSeveredSessionsAndTheOriginalState) {
  const auto inst = topo::fig1a();
  const NodeId a = inst.find_node("A");
  const NodeId b = inst.find_node("B");
  const NodeId c3 = inst.find_node("c3");

  EventEngine baseline(inst, ProtocolKind::kModified);
  baseline.inject_all_exits(0);
  const auto base_result = baseline.run();
  ASSERT_TRUE(base_result.converged);

  EventEngine engine(inst, ProtocolKind::kModified);
  engine.inject_all_exits(0);
  engine.schedule_link_down(a, c3, 1000);
  engine.schedule_link_down(b, c3, 1000);
  engine.schedule_link_up(a, c3, 1100);
  engine.schedule_link_up(b, c3, 1100);
  const auto result = engine.run();
  ASSERT_TRUE(result.converged);
  EXPECT_TRUE(engine.session_up(b, c3));
  EXPECT_EQ(engine.igp_handle(), inst.igp_handle());
  EXPECT_EQ(result.final_best, base_result.final_best);
  const auto report = analysis::check_invariants(engine);
  EXPECT_TRUE(report.clean()) << analysis::describe_report(report);
}

// --- MRAI flush vs session reset (regression) --------------------------------------

TEST(Churn, MraiFlushDoesNotLeakAcrossSessionReset) {
  // Regression: a kMraiFlush scheduled while a hold-down window was open
  // must NOT fire into a re-established session.  Sequence: a withdraw +
  // re-inject pair opens A's window toward B and queues a flush; the A—B
  // session then flaps BEFORE the flush matures.  The re-sync on session-up
  // already replayed the full table, so the matured flush must be voided
  // (stamped with the pre-reset session epoch), not leaked as a stale
  // scheduled advertisement into the new session epoch.
  const auto inst = topo::fig1b();
  const NodeId a = inst.find_node("A");
  const NodeId b = inst.find_node("B");
  const PathId ra1 = 0;  // first registered exit, at A

  EventEngine baseline(inst, ProtocolKind::kModified);
  baseline.set_mrai(200);
  baseline.inject_all_exits(0);
  const auto base_result = baseline.run();
  ASSERT_TRUE(base_result.converged);

  EventEngine engine(inst, ProtocolKind::kModified);
  engine.set_mrai(200);
  engine.inject_all_exits(0);
  engine.withdraw_exit(ra1, 1000);  // first change sends, arms the window
  engine.inject_exit(ra1, 1005);    // second change queues the flush
  engine.schedule_session_down(a, b, 1010);  // reset before the flush matures
  engine.schedule_session_up(a, b, 1050);
  const auto result = engine.run();
  ASSERT_TRUE(result.converged);

  // The stale flush (and any in-flight updates) died with the old epoch.
  EXPECT_GE(engine.deliveries_voided(), 1u);
  // The re-established session carries exactly the baseline state: same
  // fixed point, consistent RIBs, no duplicate or stale advertisement.
  EXPECT_EQ(result.final_best, base_result.final_best);
  const auto report = analysis::check_invariants(engine);
  EXPECT_TRUE(report.clean()) << analysis::describe_report(report);
}

// --- continuity: deflections are detected and priced -------------------------------

TEST(Churn, StandardOscillationDeflectsForwardingWithoutLoops) {
  // Fig 1(a) under standard I-BGP oscillates with NO faults at all: the
  // continuity replay must price the oscillation as deflected forwarding
  // (packets delivered at exits the source never selected — Fig 12's
  // phenomenon), not as loops or blackholes.
  const auto inst = topo::fig1a();
  fault::FaultScript script;  // empty: no faults, pure protocol dynamics
  fault::CampaignOptions options;
  options.max_deliveries = 100000;
  const auto campaign =
      fault::run_campaign(inst, ProtocolKind::kStandard, script, options);
  EXPECT_FALSE(campaign.reconverged());
  EXPECT_GT(campaign.continuity.deflection_ticks, 0u);
  EXPECT_EQ(campaign.continuity.loop_ticks, 0u);
  EXPECT_TRUE(campaign.continuity.churn_events.empty());  // no churn to price
}

TEST(Churn, ContinuityPricesEachChurnEventWindow) {
  // Every installed IGP epoch opens a pricing window: the per-churn-event
  // breakdown must be index-aligned with the epoch swaps, and its summed
  // damage must not exceed the campaign totals.
  const auto inst = topo::fig1a();
  fault::FaultScriptConfig config;
  config.seed = 2;
  config.window_start = 20;
  config.window_end = 400;
  config.link_downs = 3;
  const auto script = fault::make_fault_script(inst, config);
  fault::CampaignOptions options;
  options.max_deliveries = 100000;
  const auto campaign =
      fault::run_campaign(inst, ProtocolKind::kModified, script, options);
  ASSERT_TRUE(campaign.reconverged());
  EXPECT_EQ(campaign.continuity.churn_events.size(), campaign.run.igp_epoch_swaps);
  EXPECT_GT(campaign.run.igp_epoch_swaps, 0u);

  std::uint64_t loops = 0, blackholes = 0, deflections = 0;
  for (const auto& event : campaign.continuity.churn_events) {
    loops += event.loop_ticks;
    blackholes += event.blackhole_ticks;
    deflections += event.deflection_ticks;
  }
  EXPECT_LE(loops, campaign.continuity.loop_ticks);
  EXPECT_LE(blackholes, campaign.continuity.blackhole_ticks);
  EXPECT_LE(deflections, campaign.continuity.deflection_ticks);
  // This cell is known-deflecting: a link failure moves B's shortest path
  // mid-convergence and the replay must catch the transient.
  EXPECT_GT(campaign.continuity.deflection_ticks, 0u);
}

// --- fault scripts: churn knobs & paired-RNG discipline ----------------------------

TEST(Churn, ChurnKnobsLeaveEarlierFaultFamiliesByteIdentical) {
  // The churn families draw AFTER every pre-existing family, so enabling
  // them must not perturb the session-flap / crash / exit-flap schedules a
  // seed produced before churn existed.
  const auto inst = topo::fig3();
  fault::FaultScriptConfig base;
  base.seed = 7;
  base.session_flaps = 2;
  base.crashes = 1;
  base.exit_flaps = 1;
  fault::FaultScriptConfig churned = base;
  churned.link_cost_changes = 2;
  churned.link_downs = 1;
  churned.partitions = 1;

  const auto strip_churn = [](const fault::FaultScript& script) {
    std::vector<FaultAction> kept;
    for (const auto& action : script.actions) {
      if (action.kind == FaultAction::Kind::kLinkCostChange ||
          action.kind == FaultAction::Kind::kLinkDown ||
          action.kind == FaultAction::Kind::kLinkUp) {
        continue;
      }
      kept.push_back(action);
    }
    return kept;
  };
  const auto before = strip_churn(make_fault_script(inst, base));
  const auto after = strip_churn(make_fault_script(inst, churned));
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i].time, after[i].time) << i;
    EXPECT_EQ(before[i].kind, after[i].kind) << i;
    EXPECT_EQ(before[i].a, after[i].a) << i;
    EXPECT_EQ(before[i].b, after[i].b) << i;
    EXPECT_EQ(before[i].path, after[i].path) << i;
  }
}

TEST(Churn, CostChangesAndLinkDownsSharePairedDraws) {
  // Paired discipline: (changes=N, downs=0) and (changes=0, downs=N) with
  // the same seed must hit the SAME links at the SAME times for the SAME
  // durations, differing only in severity — the controlled comparison the
  // churn bench relies on.
  const auto inst = topo::fig3();
  fault::FaultScriptConfig jolts;
  jolts.seed = 11;
  jolts.link_cost_changes = 3;
  fault::FaultScriptConfig outages = jolts;
  outages.link_cost_changes = 0;
  outages.link_downs = 3;

  auto jolt_script = make_fault_script(inst, jolts);
  auto outage_script = make_fault_script(inst, outages);
  ASSERT_EQ(jolt_script.actions.size(), 6u);  // 3 jolt/revert pairs
  ASSERT_EQ(outage_script.actions.size(), 6u);
  std::stable_sort(jolt_script.actions.begin(), jolt_script.actions.end(),
                   [](const FaultAction& x, const FaultAction& y) {
                     return x.time < y.time;
                   });
  std::stable_sort(outage_script.actions.begin(), outage_script.actions.end(),
                   [](const FaultAction& x, const FaultAction& y) {
                     return x.time < y.time;
                   });
  for (std::size_t i = 0; i < jolt_script.actions.size(); ++i) {
    EXPECT_EQ(jolt_script.actions[i].time, outage_script.actions[i].time) << i;
    EXPECT_EQ(jolt_script.actions[i].a, outage_script.actions[i].a) << i;
    EXPECT_EQ(jolt_script.actions[i].b, outage_script.actions[i].b) << i;
  }
  for (const auto& action : jolt_script.actions) {
    EXPECT_TRUE(action.kind == FaultAction::Kind::kLinkCostChange);
    EXPECT_GT(action.cost, 0u);
  }
}

TEST(Churn, PartitionDownsEveryIncidentLinkOfOneVictim) {
  const auto inst = topo::fig1a();
  fault::FaultScriptConfig config;
  config.seed = 3;
  config.partitions = 1;
  const auto script = make_fault_script(inst, config);
  ASSERT_FALSE(script.actions.empty());

  // All downs share one start time, all ups one repair time, and together
  // they cover exactly the victim's incident links.
  std::vector<const FaultAction*> downs, ups;
  for (const auto& action : script.actions) {
    if (action.kind == FaultAction::Kind::kLinkDown) downs.push_back(&action);
    if (action.kind == FaultAction::Kind::kLinkUp) ups.push_back(&action);
  }
  ASSERT_FALSE(downs.empty());
  ASSERT_EQ(downs.size(), ups.size());
  for (const auto* action : downs) EXPECT_EQ(action->time, downs.front()->time);
  for (const auto* action : ups) EXPECT_EQ(action->time, ups.front()->time);
  EXPECT_GT(ups.front()->time, downs.front()->time);

  // The victim is a node that every downed link touches and whose entire
  // incidence list is covered — one of the two endpoints of the first down.
  const auto is_victim = [&](NodeId v) {
    if (inst.physical().neighbors(v).size() != downs.size()) return false;
    return std::all_of(downs.begin(), downs.end(), [&](const FaultAction* action) {
      return action->a == v || action->b == v;
    });
  };
  EXPECT_TRUE(is_victim(downs.front()->a) || is_victim(downs.front()->b));
}

// --- acceptance: mixed churn + flaps + graceful restarts ---------------------------

TEST(Churn, MixedChurnFlapAndGracefulCampaignsStayClean) {
  // The acceptance campaign: link churn layered over session flaps and
  // graceful restarts.  The modified protocol must reconverge and pass the
  // full churn-aware invariant suite — including the IGP-metric currency
  // check — on every seed.
  const auto inst = topo::fig3();
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    fault::FaultScriptConfig config;
    config.seed = seed;
    config.window_start = 20;
    config.window_end = 400;
    config.session_flaps = 2;
    config.graceful_restarts = 1;
    config.link_cost_changes = 2;
    config.link_downs = 1;
    config.partitions = 1;
    const auto script = make_fault_script(inst, config);
    fault::CampaignOptions options;
    options.max_deliveries = 200000;
    const auto campaign =
        fault::run_campaign(inst, ProtocolKind::kModified, script, options);
    ASSERT_TRUE(campaign.reconverged()) << "seed " << seed;
    EXPECT_TRUE(campaign.invariants.clean())
        << "seed " << seed << "\n"
        << analysis::describe_report(campaign.invariants);
    EXPECT_EQ(campaign.invariants.igp_mismatch, 0u) << "seed " << seed;
  }
}

// --- determinism: churn cells, serial vs parallel ----------------------------------

TEST(Churn, ChurnSweepIsByteIdenticalSerialVsParallel) {
  // The SPF cache is shared across worker threads; hashes cover the full
  // IGP epoch timeline — so any schedule-dependence in the churn path would
  // surface as a serial-vs-parallel trace divergence here.
  const auto fig1a = topo::fig1a();
  const auto fig3 = topo::fig3();
  std::vector<fault::SweepCell> cells;
  for (const core::Instance* inst : {&fig1a, &fig3}) {
    for (const auto protocol : {ProtocolKind::kStandard, ProtocolKind::kModified}) {
      for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        fault::FaultScriptConfig config;
        config.seed = seed;
        config.window_start = 20;
        config.window_end = 400;
        config.link_cost_changes = 2;
        config.link_downs = 1;
        config.partitions = 1;
        config.session_flaps = 1;
        fault::SweepCell cell;
        cell.instance = inst;
        cell.protocol = protocol;
        cell.script = make_fault_script(*inst, config);
        cell.options.max_deliveries = 60000;
        cell.seed = seed;
        cells.push_back(std::move(cell));
      }
    }
  }
  const auto serial = fault::run_sweep(cells, 1);
  const auto parallel = fault::run_sweep(cells, 4);
  EXPECT_EQ(serial.fingerprint, parallel.fingerprint);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(serial.cells[i].trace_hash, parallel.cells[i].trace_hash) << i;
  }
}

// --- properties over random topologies ---------------------------------------------

topo::RandomConfig churn_ensemble(std::uint64_t seed) {
  topo::RandomConfig config;
  config.clusters = 2 + seed % 3;
  config.max_clients = 1 + seed % 3;
  config.neighbor_ases = 1 + seed % 3;
  config.exits = 3 + seed % 4;
  config.max_med = 1 + static_cast<Med>(seed % 3);
  config.max_exit_cost = static_cast<Cost>(seed % 5);
  config.extra_link_prob = 0.2 + 0.1 * static_cast<double>(seed % 3);
  return config;
}

class RandomChurnProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  core::Instance make_instance() const {
    return topo::random_instance(churn_ensemble(GetParam()), GetParam());
  }
};

TEST_P(RandomChurnProperty, PostQuiescenceMetricsMatchTheCurrentGraph) {
  // After any churn campaign that reconverges, every selected route's
  // metric must equal the CURRENT graph's shortest-path distance to its
  // exit plus the exit cost — the IGP-metric currency invariant, checked
  // across all three protocols.
  const auto inst = make_instance();
  fault::FaultScriptConfig config;
  config.seed = GetParam();
  config.window_start = 20;
  config.window_end = 300;
  config.link_cost_changes = 2;
  config.link_downs = 1;
  const auto script = make_fault_script(inst, config);
  fault::CampaignOptions options;
  options.max_deliveries = 150000;
  for (const auto protocol :
       {ProtocolKind::kStandard, ProtocolKind::kWalton, ProtocolKind::kModified}) {
    const auto campaign = fault::run_campaign(inst, protocol, script, options);
    if (!campaign.reconverged()) continue;  // oscillation: invariants inexact
    EXPECT_EQ(campaign.invariants.igp_mismatch, 0u)
        << core::protocol_name(protocol) << "\n"
        << analysis::describe_report(campaign.invariants);
    if (protocol == ProtocolKind::kModified) {
      EXPECT_TRUE(campaign.invariants.clean())
          << analysis::describe_report(campaign.invariants);
    }
  }
}

TEST_P(RandomChurnProperty, RevertedChurnRestoresTheOriginalStableState) {
  // link_up (and cost reverts) restoring the original cost vector must
  // restore the original stable state on oscillation-free instances — and
  // hand back the instance's base epoch pointer-identically.
  const auto inst = make_instance();
  EventEngine baseline(inst, ProtocolKind::kModified);
  baseline.inject_all_exits(0);
  const auto base_result = baseline.run();
  ASSERT_TRUE(base_result.converged);

  const auto links = inst.physical().links();
  ASSERT_FALSE(links.empty());
  const auto& first = links.front();
  const auto& last = links.back();

  EventEngine engine(inst, ProtocolKind::kModified);
  engine.inject_all_exits(0);
  engine.schedule_link_cost_change(first.a, first.b, first.cost + 3, 1000);
  engine.schedule_link_down(last.a, last.b, 1100);
  engine.schedule_link_cost_change(first.a, first.b, first.cost, 1200);
  engine.schedule_link_up(last.a, last.b, 1300);
  const auto result = engine.run();
  ASSERT_TRUE(result.converged);
  EXPECT_EQ(engine.igp_handle(), inst.igp_handle());
  EXPECT_EQ(result.final_best, base_result.final_best);
  const auto report = analysis::check_invariants(engine);
  EXPECT_TRUE(report.clean()) << analysis::describe_report(report);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomChurnProperty, ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace ibgp
