// SAT-module tests: CNF/DIMACS, the DPLL solver, and the Section 5
// reduction — gadget properties and the stable <=> satisfiable equivalence
// on exhaustively-checkable instances.

#include <gtest/gtest.h>

#include <initializer_list>
#include <set>

#include "analysis/stable_search.hpp"
#include "engine/activation.hpp"
#include "engine/oscillation.hpp"
#include "sat/cnf.hpp"
#include "sat/dpll.hpp"
#include "sat/reduction.hpp"
#include "topo/builder.hpp"

namespace ibgp::sat {
namespace {

Formula make(std::initializer_list<std::initializer_list<int>> clauses) {
  Formula formula;
  for (const auto& clause : clauses) {
    Clause c;
    for (const int lit : clause) c.push_back(Lit{lit});
    formula.add_clause(std::move(c));
  }
  return formula;
}

// --- CNF / DIMACS ---------------------------------------------------------------

TEST(Cnf, SatisfiedBy) {
  const auto f = make({{1, -2, 3}});
  EXPECT_FALSE(f.satisfied_by({false, false, true, false}));  // x2=T: all lits false
  EXPECT_TRUE(f.satisfied_by({false, true, false, false}));   // x1=T satisfies
  EXPECT_TRUE(f.satisfied_by({false, false, false, false}));  // -x2 satisfies
}

TEST(Cnf, RejectsBadClauses) {
  Formula f;
  EXPECT_THROW(f.add_clause({}), std::invalid_argument);
  EXPECT_THROW(f.add_clause({Lit{0}}), std::invalid_argument);
}

TEST(Cnf, DimacsRoundTrip) {
  const auto f = make({{1, 2, -3}, {-1, 2, 3}, {1, -2, 3}});
  const auto parsed = parse_dimacs(f.to_dimacs());
  EXPECT_EQ(parsed.num_vars(), f.num_vars());
  ASSERT_EQ(parsed.num_clauses(), f.num_clauses());
  for (std::size_t i = 0; i < f.num_clauses(); ++i) {
    EXPECT_EQ(parsed.clauses()[i], f.clauses()[i]);
  }
}

TEST(Cnf, DimacsParsesCommentsAndMultiline) {
  const auto f = parse_dimacs("c a comment\np cnf 2 1\n1\n-2 0\n");
  EXPECT_EQ(f.num_clauses(), 1u);
  EXPECT_EQ(f.clauses()[0], (Clause{Lit{1}, Lit{-2}}));
}

TEST(Cnf, DimacsRejectsGarbage) {
  EXPECT_THROW(parse_dimacs("p cnf x y\n"), std::runtime_error);
  EXPECT_THROW(parse_dimacs("1 2 0\n"), std::runtime_error);  // missing header
  EXPECT_THROW(parse_dimacs("p cnf 2 1\n1 foo 0\n"), std::runtime_error);
}

TEST(Cnf, Random3SatShape) {
  const auto f = random_3sat(6, 20, 42);
  EXPECT_EQ(f.num_clauses(), 20u);
  for (const auto& clause : f.clauses()) {
    ASSERT_EQ(clause.size(), 3u);
    EXPECT_NE(clause[0].var(), clause[1].var());
    EXPECT_NE(clause[0].var(), clause[2].var());
    EXPECT_NE(clause[1].var(), clause[2].var());
  }
}

// --- DPLL ------------------------------------------------------------------------

TEST(Dpll, TrivialSat) {
  const auto result = solve(make({{1, 2, 3}}));
  ASSERT_TRUE(result.satisfiable);
  EXPECT_TRUE(make({{1, 2, 3}}).satisfied_by(result.assignment));
}

TEST(Dpll, ForcedAssignment) {
  const auto f = make({{1, 1, 1}, {-1, 2, 2}});
  const auto result = solve(f);
  ASSERT_TRUE(result.satisfiable);
  EXPECT_TRUE(result.assignment[1]);
  EXPECT_TRUE(result.assignment[2]);
}

TEST(Dpll, SmallUnsat) {
  EXPECT_FALSE(solve(make({{1, 1, 1}, {-1, -1, -1}})).satisfiable);
}

TEST(Dpll, CompleteUnsatOver2Vars) {
  // All four clauses over x1,x2 as 3-literal clauses (third literal dup).
  const auto f = make({{1, 2, 2}, {1, -2, -2}, {-1, 2, 2}, {-1, -2, -2}});
  EXPECT_FALSE(solve(f).satisfiable);
}

TEST(Dpll, AgreesWithBruteForceOnRandomFormulas) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const auto f = random_3sat(5, 15 + seed % 8, seed);
    const auto result = solve(f);
    bool brute = false;
    for (unsigned mask = 0; mask < 32; ++mask) {
      Assignment a(6, false);
      for (int v = 1; v <= 5; ++v) a[v] = (mask >> (v - 1)) & 1;
      if (f.satisfied_by(a)) {
        brute = true;
        break;
      }
    }
    ASSERT_EQ(result.satisfiable, brute) << "seed " << seed;
    if (result.satisfiable) {
      EXPECT_TRUE(f.satisfied_by(result.assignment)) << "seed " << seed;
    }
  }
}

// --- reduction structure -----------------------------------------------------------

TEST(Reduction, SizesArePolynomial) {
  const auto f = random_3sat(4, 5, 3);
  const auto reduction = reduce_to_ibgp(f);
  EXPECT_EQ(reduction.instance.node_count(), 4 * 4 + 12 * 5);
  EXPECT_EQ(reduction.instance.exits().size(), 2 * 4 + 6 * 5);
  EXPECT_EQ(reduction.vars.size(), 5u);
  EXPECT_EQ(reduction.clauses.size(), 5u);
}

TEST(Reduction, RejectsBadInput) {
  EXPECT_THROW(reduce_to_ibgp(Formula{}), std::invalid_argument);
  EXPECT_THROW(reduce_to_ibgp(make({{1, 2}})), std::invalid_argument);
}

TEST(Reduction, VariableGadgetAloneIsBistable) {
  // A variable graph in isolation — built via a 1-clause formula whose ring
  // is always defused is hard to isolate, so build the gadget directly.
  topo::InstanceBuilder b;
  b.reflector("xT", 0);
  b.client("cT", 0);
  b.reflector("xF", 1);
  b.client("cF", 1);
  b.link("xT", "cT", 10);
  b.link("xF", "cF", 10);
  b.link("xT", "cF", 2);
  b.link("xF", "cT", 2);
  b.link("xT", "xF", 10);
  b.exit({.name = "eT", .at = "cT", .next_as = 1, .med = 1});
  b.exit({.name = "eF", .at = "cF", .next_as = 1, .med = 1});
  const auto inst = b.build("var-gadget");
  const auto result = analysis::enumerate_stable_standard(inst);
  ASSERT_TRUE(result.exhaustive);
  EXPECT_EQ(result.solutions.size(), 2u) << "variable graph must have exactly 2 states";
}

TEST(Reduction, ClauseRingAloneHasNoStableSolution) {
  // The clause graph in isolation (no taps): an odd inverter ring.
  topo::InstanceBuilder b;
  for (int k = 0; k < 3; ++k) {
    b.reflector("K" + std::to_string(k), static_cast<netsim::ClusterId>(k));
    b.client("q" + std::to_string(k), static_cast<netsim::ClusterId>(k));
    b.link("K" + std::to_string(k), "q" + std::to_string(k), 3);
  }
  for (int k = 0; k < 3; ++k) {
    b.link("K" + std::to_string(k), "q" + std::to_string((k + 2) % 3), 2);
  }
  for (int k = 0; k < 3; ++k) {
    b.exit({.name = "r" + std::to_string(k), .at = "q" + std::to_string(k), .next_as = 1,
            .med = 1});
  }
  const auto inst = b.build("clause-ring");
  const auto result = analysis::enumerate_stable_standard(inst);
  ASSERT_TRUE(result.exhaustive);
  EXPECT_TRUE(result.solutions.empty()) << "clause graph alone must oscillate";
  // And the dynamics agree.
  auto rr = engine::make_round_robin(inst.node_count());
  EXPECT_EQ(engine::run_protocol(inst, core::ProtocolKind::kStandard, *rr).status,
            engine::RunStatus::kCycleDetected);
}

// --- the equivalence (Theorem 5.1) ---------------------------------------------------

struct EquivalenceCase {
  const char* name;
  Formula formula;
  bool satisfiable;
};

class ReductionEquivalence : public ::testing::TestWithParam<int> {};

std::vector<EquivalenceCase> equivalence_cases() {
  std::vector<EquivalenceCase> cases;
  cases.push_back({"single_sat", make({{1, 1, 1}}), true});
  cases.push_back({"single_neg", make({{-1, -1, -1}}), true});
  cases.push_back({"unsat_pair", make({{1, 1, 1}, {-1, -1, -1}}), false});
  cases.push_back({"two_var_sat", make({{1, 2, 2}, {-1, -2, -2}}), true});
  cases.push_back({"implication_chain", make({{-1, 2, 2}, {1, 1, 1}}), true});
  cases.push_back(
      {"unsat_2var", make({{1, 2, 2}, {1, -2, -2}, {-1, 2, 2}, {-1, -2, -2}}), false});
  return cases;
}

TEST_P(ReductionEquivalence, StableIffSatisfiable) {
  const auto cases = equivalence_cases();
  const auto& test_case = cases[static_cast<std::size_t>(GetParam())];
  const auto solved = solve(test_case.formula);
  ASSERT_EQ(solved.satisfiable, test_case.satisfiable) << test_case.name;

  const auto reduction = reduce_to_ibgp(test_case.formula);
  // Exhaustive refutation is itself NP-hard; run it to completion only on
  // instances small enough to finish quickly, and otherwise settle for the
  // one-sided check (a stable solution for an UNSAT formula is always a bug).
  analysis::StableSearchLimits limits;
  limits.max_nodes = reduction.instance.node_count() <= 30 ? 80'000'000 : 300'000;
  const auto search = analysis::enumerate_stable_standard(reduction.instance, limits);
  if (search.exhaustive) {
    EXPECT_EQ(search.any(), test_case.satisfiable) << test_case.name;
  } else {
    EXPECT_FALSE(search.any() && !test_case.satisfiable)
        << test_case.name << ": stable solution found for an UNSAT formula";
  }

  if (test_case.satisfiable) {
    // The steered engine run must reach a verified stable configuration.
    auto schedule = engine::make_scripted(reduction.instance.node_count(),
                                          reduction.steering(solved.assignment));
    engine::RunLimits run_limits;
    run_limits.max_steps = 50000;
    const auto outcome = engine::run_protocol(reduction.instance,
                                              core::ProtocolKind::kStandard, *schedule,
                                              run_limits);
    ASSERT_EQ(outcome.status, engine::RunStatus::kConverged) << test_case.name;
    EXPECT_TRUE(analysis::is_stable_standard(reduction.instance, outcome.final_best))
        << test_case.name;
  } else {
    // Unsatisfiable: deterministic schedules oscillate forever.
    auto rr = engine::make_round_robin(reduction.instance.node_count());
    engine::RunLimits run_limits;
    run_limits.max_steps = 50000;
    const auto outcome = engine::run_protocol(reduction.instance,
                                              core::ProtocolKind::kStandard, *rr,
                                              run_limits);
    EXPECT_EQ(outcome.status, engine::RunStatus::kCycleDetected) << test_case.name;
  }

  // The paper's modified protocol converges on every reduction instance —
  // satisfiable or not (Theorem of Section 7).
  auto rr = engine::make_round_robin(reduction.instance.node_count());
  const auto modified = engine::run_protocol(reduction.instance,
                                             core::ProtocolKind::kModified, *rr);
  EXPECT_EQ(modified.status, engine::RunStatus::kConverged) << test_case.name;
}

INSTANTIATE_TEST_SUITE_P(AllCases, ReductionEquivalence, ::testing::Range(0, 6),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return equivalence_cases()[static_cast<std::size_t>(
                                                          info.param)]
                               .name;
                         });

TEST(Reduction, SteeringReachesEverySatisfyingAssignmentsConfig) {
  // For a formula with multiple satisfying assignments, steering toward each
  // must land in a *different* stable configuration (the reduction encodes
  // assignments faithfully).
  const auto f = make({{1, 2, 2}});  // x1 or x2
  const auto reduction = reduce_to_ibgp(f);
  std::set<std::vector<PathId>> outcomes;
  for (const bool x1 : {false, true}) {
    for (const bool x2 : {false, true}) {
      if (!x1 && !x2) continue;  // not satisfying
      Assignment a{false, x1, x2};
      auto schedule = engine::make_scripted(reduction.instance.node_count(),
                                            reduction.steering(a));
      engine::RunLimits limits;
      limits.max_steps = 50000;
      const auto outcome = engine::run_protocol(reduction.instance,
                                                core::ProtocolKind::kStandard, *schedule,
                                                limits);
      ASSERT_EQ(outcome.status, engine::RunStatus::kConverged);
      ASSERT_TRUE(analysis::is_stable_standard(reduction.instance, outcome.final_best));
      outcomes.insert(outcome.final_best);
    }
  }
  EXPECT_EQ(outcomes.size(), 3u) << "three satisfying assignments, three fixed points";
}

}  // namespace
}  // namespace ibgp::sat
