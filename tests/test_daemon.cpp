// Daemon-mode suite: the ibgp-wire-v1 codec, the bounded ingest queue's
// shedding policy, the watchdog, and — the centerpiece — the
// kill-at-every-record oracle: a daemon SIGKILLed (destroyed without
// drain) after EVERY prefix of a seeded stream, restarted with resume,
// and fed the remainder must answer every remaining line byte-identically
// to a daemon that was never interrupted, down to the trace hash and the
// metrics fingerprint in the final stats reply.
//
// The negative half replays examples/data/wire/bad_corpus.jsonl and an
// oversize line through a live daemon: every reply must be a structured
// error and the daemon must keep answering afterwards — malformed input
// can cost a reply, never the process.

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "daemon/daemon.hpp"
#include "daemon/queue.hpp"
#include "daemon/service.hpp"
#include "daemon/stream.hpp"
#include "daemon/watchdog.hpp"
#include "daemon/wire.hpp"
#include "obs/exposition.hpp"
#include "engine/event_engine.hpp"
#include "topo/figures.hpp"
#include "util/json.hpp"

namespace ibgp::daemon {
namespace {

using core::ProtocolKind;

std::filesystem::path fresh_state_dir(const std::string& tag) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("ibgp-daemon-test-" + tag + "-" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::shared_ptr<core::Instance> fig1a_shared() {
  return std::make_shared<core::Instance>(topo::fig1a());
}

std::vector<std::string> oracle_stream() {
  StreamOptions options;
  options.seed = 20020819;  // SIGCOMM '02
  options.state_records = 24;
  options.query_rate = 0.5;
  options.fault_rate = 0.3;
  // The modified protocol provably converges, so every step_engine call
  // drains; the standard protocol would oscillate forever on fig1a and
  // burn the whole step budget at the first announce.
  return generate_stream(topo::fig1a(), ProtocolKind::kModified, options);
}

bool is_error_reply(const std::string& reply) {
  return reply.find("\"ev\": \"error\"") != std::string::npos;
}

// --- wire codec -------------------------------------------------------------

TEST(Wire, ParsesTheFourRecordFamilies) {
  auto ok = [](std::string_view line) {
    auto parsed = parse_record(line);
    ASSERT_TRUE(std::holds_alternative<WireRecord>(parsed))
        << line << " -> " << std::get<WireError>(parsed).message;
  };
  ok(R"({"ev": "hello", "schema": "ibgp-wire-v1", "instance": "fig1a", "protocol": "modified"})");
  ok(R"({"ev": "announce", "seq": 1, "t": 10, "path": 0})");
  ok(R"({"ev": "withdraw", "seq": 2, "t": 10, "path": 1})");
  ok(R"({"ev": "fault", "seq": 3, "t": 12, "kind": "crash", "a": 2})");
  ok(R"({"ev": "fault", "seq": 4, "t": 12, "kind": "link-cost", "a": 0, "b": 1, "cost": 7})");
  ok(R"({"ev": "query", "q": "best", "node": 3})");
  ok(R"({"ev": "query", "q": "whatif", "kind": "session-down", "a": 0, "b": 1})");
  ok(R"({"ev": "drain"})");
}

TEST(Wire, RejectsStructurallyBadLinesWithTypedErrors) {
  auto code_of = [](std::string_view line) {
    auto parsed = parse_record(line);
    EXPECT_TRUE(std::holds_alternative<WireError>(parsed)) << line;
    return std::holds_alternative<WireError>(parsed) ? std::get<WireError>(parsed).code
                                                     : ErrorCode::kParse;
  };
  EXPECT_EQ(code_of("not json"), ErrorCode::kParse);
  EXPECT_EQ(code_of("[1, 2]"), ErrorCode::kParse);
  EXPECT_EQ(code_of(R"({"ev": "hello", "schema": "ibgp-wire-v2", "instance": "x", "protocol": "y"})"),
            ErrorCode::kVersion);
  EXPECT_EQ(code_of(R"({"ev": "teleport"})"), ErrorCode::kUnknownType);
  EXPECT_EQ(code_of(R"({"ev": "announce", "seq": 1, "t": 0, "path": 0, "junk": 1})"),
            ErrorCode::kBadField);
  EXPECT_EQ(code_of(R"({"ev": "announce", "seq": 0, "t": 0, "path": 0})"), ErrorCode::kBadField);
  EXPECT_EQ(code_of(R"({"ev": "announce", "seq": 1, "t": 4503599627370497, "path": 0})"),
            ErrorCode::kRange);
  EXPECT_EQ(code_of(R"({"ev": "fault", "seq": 1, "t": 0, "kind": "stale-expire", "a": 0})"),
            ErrorCode::kUnknownType);
  EXPECT_EQ(code_of(R"({"ev": "fault", "seq": 1, "t": 0, "kind": "crash", "a": 0, "b": 1})"),
            ErrorCode::kBadField);
  const std::string oversize(kMaxLineBytes + 1, 'x');
  EXPECT_EQ(code_of(oversize), ErrorCode::kOversize);
}

TEST(Wire, ErrorRepliesEchoTheSeqWhenParseable) {
  auto parsed = parse_record(R"({"ev": "fault", "seq": 7, "t": 0, "kind": "meteor", "a": 0})");
  ASSERT_TRUE(std::holds_alternative<WireError>(parsed));
  const auto& error = std::get<WireError>(parsed);
  EXPECT_TRUE(error.has_seq);
  EXPECT_EQ(error.seq, 7u);
  EXPECT_NE(error_reply(error).find("\"seq\": 7"), std::string::npos);
}

// --- engine horizon stepping ------------------------------------------------

TEST(RunUntil, IncrementalHorizonsMatchOneShotRun) {
  const auto inst = topo::fig1a();
  engine::EventEngine once(inst, ProtocolKind::kModified);
  once.inject_all_exits(0);
  once.withdraw_exit(0, 100);
  once.inject_exit(0, 200);
  const auto full = once.run();

  engine::EventEngine stepped(inst, ProtocolKind::kModified);
  stepped.inject_all_exits(0);
  stepped.withdraw_exit(0, 100);
  stepped.inject_exit(0, 200);
  std::size_t total = 0;
  for (const engine::SimTime horizon : {0u, 50u, 100u, 150u, 200u, 100000u}) {
    const auto part = stepped.run_until(horizon);
    EXPECT_TRUE(part.converged) << "not quiescent up to " << horizon;
    total += part.deliveries;
  }
  EXPECT_EQ(total, full.deliveries);
  EXPECT_EQ(stepped.flap_log().size(), once.flap_log().size());
  for (NodeId v = 0; v < inst.node_count(); ++v) {
    EXPECT_EQ(stepped.best_path(v), once.best_path(v)) << "node " << v;
  }
}

TEST(RunUntil, StopsBeforeEventsPastTheHorizon) {
  const auto inst = topo::fig1a();
  engine::EventEngine engine(inst, ProtocolKind::kModified);
  engine.inject_exit(0, 500);
  const auto early = engine.run_until(499);
  EXPECT_TRUE(early.converged);
  EXPECT_EQ(early.deliveries, 0u);
  const auto late = engine.run_until(100000);
  EXPECT_GT(late.deliveries, 0u);
}

// --- ingest queue shedding --------------------------------------------------

TEST(IngestQueue, ShedsOldestQueryFirstAtCapacity) {
  IngestQueue queue(2);
  queue.push("q1", /*is_query=*/true);
  queue.push("q2", /*is_query=*/true);
  queue.push("q3", /*is_query=*/true);  // tombstones q1, admits q3

  auto first = queue.pop();
  EXPECT_TRUE(first.shed);
  EXPECT_EQ(first.shed_code, ErrorCode::kShed);
  EXPECT_TRUE(first.line.empty());
  auto second = queue.pop();
  EXPECT_FALSE(second.shed);
  EXPECT_EQ(second.line, "q2");
  auto third = queue.pop();
  EXPECT_FALSE(third.shed);
  EXPECT_EQ(third.line, "q3");
  EXPECT_EQ(queue.sheds(), 1u);
}

TEST(IngestQueue, StateIsNeverShedQueryBouncesWhenNothingSheddable) {
  IngestQueue queue(2);
  queue.push("s1", /*is_query=*/false);
  queue.push("s2", /*is_query=*/false);
  queue.push("q", /*is_query=*/true);  // nothing sheddable: admitted pre-tombstoned

  EXPECT_EQ(queue.pop().line, "s1");
  EXPECT_EQ(queue.pop().line, "s2");
  auto bounced = queue.pop();
  EXPECT_TRUE(bounced.shed);
  EXPECT_EQ(bounced.shed_code, ErrorCode::kOverload);
}

TEST(IngestQueue, FullQueueBackpressuresStateUntilConsumed) {
  IngestQueue queue(1);
  queue.push("s1", /*is_query=*/false);
  std::thread producer([&] { queue.push("s2", /*is_query=*/false); });
  // The producer must block until s1 is popped; drain both to join.
  EXPECT_EQ(queue.pop().line, "s1");
  EXPECT_EQ(queue.pop().line, "s2");
  producer.join();
  EXPECT_EQ(queue.sheds(), 0u);
}

// --- watchdog ---------------------------------------------------------------

TEST(WatchdogTest, RecordsAStallOnlyWhenARecordIsInFlight) {
  obs::MetricsRegistry registry;
  Watchdog::Options options;
  options.interval = std::chrono::milliseconds(5);
  options.stall_after = std::chrono::milliseconds(30);
  Watchdog dog(&registry, options);
  dog.start();
  // Idle time never counts as a stall.
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_EQ(dog.stalls(), 0u);
  dog.begin_record();
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  dog.end_record();
  dog.stop();
  EXPECT_GE(dog.stalls(), 1u);
}

// --- negative-path corpus ---------------------------------------------------

TEST(DaemonErrors, EveryBadCorpusLineBecomesAStructuredError) {
  Daemon daemon(fig1a_shared(), ProtocolKind::kModified, DaemonOptions{});
  EXPECT_FALSE(is_error_reply(daemon.handle_line(
      R"({"ev": "hello", "schema": "ibgp-wire-v1", "instance": "fig1a", "protocol": "modified"})")));

  std::ifstream corpus(IBGP_WIRE_CORPUS);
  ASSERT_TRUE(corpus.is_open()) << IBGP_WIRE_CORPUS;
  std::string line;
  std::size_t lines = 0;
  while (std::getline(corpus, line)) {
    if (line.empty()) continue;
    ++lines;
    const std::string reply = daemon.handle_line(line);
    EXPECT_TRUE(is_error_reply(reply)) << "line: " << line << "\nreply: " << reply;
  }
  EXPECT_GE(lines, 30u);

  // The oversize line is built here rather than shipped as a 64 KiB file.
  EXPECT_TRUE(is_error_reply(daemon.handle_line(std::string(kMaxLineBytes + 1, '{'))));

  // Non-monotonic timestamps need applied state to be observable.
  EXPECT_FALSE(is_error_reply(
      daemon.handle_line(R"({"ev": "announce", "seq": 1, "t": 100, "path": 0})")));
  const std::string stale =
      daemon.handle_line(R"({"ev": "announce", "seq": 2, "t": 50, "path": 1})");
  EXPECT_TRUE(is_error_reply(stale));
  EXPECT_NE(stale.find("\"code\": \"order\""), std::string::npos) << stale;

  // After all of the abuse the daemon still answers real queries.
  const std::string status = daemon.handle_line(R"({"ev": "query", "q": "status"})");
  EXPECT_FALSE(is_error_reply(status));
  EXPECT_NE(status.find("\"applied_seq\": 1"), std::string::npos) << status;
}

TEST(DaemonErrors, StateRecordsBeforeHelloAreRefused) {
  Daemon daemon(fig1a_shared(), ProtocolKind::kModified, DaemonOptions{});
  const std::string reply =
      daemon.handle_line(R"({"ev": "announce", "seq": 1, "t": 0, "path": 0})");
  EXPECT_TRUE(is_error_reply(reply));
  EXPECT_NE(reply.find("hello"), std::string::npos);
}

TEST(DaemonErrors, HelloIdentityMismatchIsRefused) {
  Daemon daemon(fig1a_shared(), ProtocolKind::kModified, DaemonOptions{});
  const std::string reply = daemon.handle_line(
      R"({"ev": "hello", "schema": "ibgp-wire-v1", "instance": "fig3", "protocol": "modified"})");
  EXPECT_TRUE(is_error_reply(reply));
  EXPECT_NE(reply.find("\"code\": \"identity\""), std::string::npos) << reply;
}

// --- the kill-at-every-record oracle ----------------------------------------

TEST(DaemonRecovery, KillAtEveryRecordAnswersByteIdentically) {
  const auto lines = oracle_stream();

  // The uninterrupted reference run.
  const auto ref_dir = fresh_state_dir("oracle-ref");
  std::vector<std::string> reference;
  {
    DaemonOptions options;
    options.state_dir = ref_dir.string();
    options.ckpt_every = 4;
    Daemon daemon(fig1a_shared(), ProtocolKind::kModified, options);
    for (const auto& line : lines) reference.push_back(daemon.handle_line(line));
  }
  ASSERT_EQ(reference.size(), lines.size());

  for (std::size_t kill = 1; kill + 1 < lines.size(); ++kill) {
    const auto dir = fresh_state_dir("oracle-" + std::to_string(kill));
    {
      DaemonOptions options;
      options.state_dir = dir.string();
      options.ckpt_every = 4;
      Daemon victim(fig1a_shared(), ProtocolKind::kModified, options);
      for (std::size_t i = 0; i < kill; ++i) {
        EXPECT_EQ(victim.handle_line(lines[i]), reference[i]) << "prefix line " << i;
      }
      // Destruction without drain() writes nothing: SIGKILL-equivalent.
    }
    DaemonOptions options;
    options.state_dir = dir.string();
    options.ckpt_every = 4;
    options.resume = true;
    Daemon survivor(fig1a_shared(), ProtocolKind::kModified, options);
    const std::string hello = survivor.handle_line(lines[0]);
    EXPECT_NE(hello.find("\"resumed\": true"), std::string::npos) << hello;
    for (std::size_t i = kill; i < lines.size(); ++i) {
      if (i == 0) continue;  // kill >= 1, so the hello is never replayed here
      EXPECT_EQ(survivor.handle_line(lines[i]), reference[i])
          << "kill point " << kill << ", line " << i << ": " << lines[i];
    }
    std::filesystem::remove_all(dir);
  }
  std::filesystem::remove_all(ref_dir);
}

TEST(DaemonRecovery, TornWalTailIsTruncatedAndReplayedClean) {
  const auto lines = oracle_stream();
  const auto dir = fresh_state_dir("torn");
  const std::size_t kill = lines.size() / 2;

  std::vector<std::string> reference;
  {
    const auto ref_dir = fresh_state_dir("torn-ref");
    DaemonOptions options;
    options.state_dir = ref_dir.string();
    options.ckpt_every = 6;
    Daemon daemon(fig1a_shared(), ProtocolKind::kModified, options);
    for (const auto& line : lines) reference.push_back(daemon.handle_line(line));
    std::filesystem::remove_all(ref_dir);
  }

  {
    DaemonOptions options;
    options.state_dir = dir.string();
    options.ckpt_every = 6;
    Daemon victim(fig1a_shared(), ProtocolKind::kModified, options);
    for (std::size_t i = 0; i < kill; ++i) victim.handle_line(lines[i]);
  }
  {
    // The append a SIGKILL interrupted: no trailing newline, half a record.
    std::ofstream wal(dir / "wal.jsonl", std::ios::app);
    wal << R"({"ev": "announce", "seq": 99999, "t")";
  }

  DaemonOptions options;
  options.state_dir = dir.string();
  options.ckpt_every = 6;
  options.resume = true;
  Daemon survivor(fig1a_shared(), ProtocolKind::kModified, options);
  survivor.handle_line(lines[0]);
  for (std::size_t i = kill; i < lines.size(); ++i) {
    EXPECT_EQ(survivor.handle_line(lines[i]), reference[i]) << "line " << i;
  }
  std::filesystem::remove_all(dir);
}

TEST(DaemonRecovery, ReplayedRecordsGetByteIdenticalAcks) {
  const auto dir = fresh_state_dir("dedupe");
  DaemonOptions options;
  options.state_dir = dir.string();
  Daemon daemon(fig1a_shared(), ProtocolKind::kModified, options);
  daemon.handle_line(
      R"({"ev": "hello", "schema": "ibgp-wire-v1", "instance": "fig1a", "protocol": "modified"})");
  const std::string record = R"({"ev": "announce", "seq": 1, "t": 10, "path": 0})";
  const std::string first = daemon.handle_line(record);
  EXPECT_NE(first.find("\"ev\": \"ack\""), std::string::npos);
  // A client that never saw its ack re-sends; exactly-once means the apply
  // is skipped but the ack is reproduced byte for byte.
  EXPECT_EQ(daemon.handle_line(record), first);
  const std::string stats = daemon.handle_line(R"({"ev": "query", "q": "stats"})");
  EXPECT_NE(stats.find("\"state_records\": 1"), std::string::npos) << stats;
  std::filesystem::remove_all(dir);
}

TEST(DaemonRecovery, ResumeRefusesAForeignStateDir) {
  const auto dir = fresh_state_dir("foreign");
  {
    DaemonOptions options;
    options.state_dir = dir.string();
    Daemon daemon(fig1a_shared(), ProtocolKind::kModified, options);
    daemon.handle_line(
        R"({"ev": "hello", "schema": "ibgp-wire-v1", "instance": "fig1a", "protocol": "modified"})");
    daemon.handle_line(R"({"ev": "announce", "seq": 1, "t": 0, "path": 0})");
    daemon.drain();
  }
  DaemonOptions options;
  options.state_dir = dir.string();
  options.resume = true;
  EXPECT_THROW(
      { Daemon other(std::make_shared<core::Instance>(topo::fig3()), ProtocolKind::kModified, options); },
      std::runtime_error);
  std::filesystem::remove_all(dir);
}

// --- graceful drain ---------------------------------------------------------

TEST(DaemonDrain, DrainIsIdempotentAndRefusesFurtherState) {
  const auto dir = fresh_state_dir("drain");
  DaemonOptions options;
  options.state_dir = dir.string();
  Daemon daemon(fig1a_shared(), ProtocolKind::kModified, options);
  daemon.handle_line(
      R"({"ev": "hello", "schema": "ibgp-wire-v1", "instance": "fig1a", "protocol": "modified"})");
  daemon.handle_line(R"({"ev": "announce", "seq": 1, "t": 0, "path": 0})");

  const std::string once = daemon.drain();
  EXPECT_NE(once.find("\"ev\": \"drained\""), std::string::npos);
  EXPECT_EQ(daemon.drain(), once);
  EXPECT_TRUE(std::filesystem::exists(dir / "checkpoint.json"));

  EXPECT_TRUE(is_error_reply(
      daemon.handle_line(R"({"ev": "announce", "seq": 2, "t": 5, "path": 1})")));
  // Queries still answer after drain.
  EXPECT_FALSE(is_error_reply(daemon.handle_line(R"({"ev": "query", "q": "best", "node": 0})")));
  std::filesystem::remove_all(dir);
}

// --- what-if sandboxing -----------------------------------------------------

TEST(DaemonWhatIf, SandboxLeavesTheLiveEngineUntouched) {
  Daemon daemon(fig1a_shared(), ProtocolKind::kModified, DaemonOptions{});
  daemon.handle_line(
      R"({"ev": "hello", "schema": "ibgp-wire-v1", "instance": "fig1a", "protocol": "modified"})");
  daemon.handle_line(R"({"ev": "announce", "seq": 1, "t": 0, "path": 0})");
  daemon.handle_line(R"({"ev": "announce", "seq": 2, "t": 0, "path": 1})");

  const std::string before = daemon.handle_line(R"({"ev": "query", "q": "stats"})");
  const std::string whatif =
      daemon.handle_line(R"({"ev": "query", "q": "whatif", "kind": "crash", "a": 0})");
  EXPECT_NE(whatif.find("\"ev\": \"whatif\""), std::string::npos) << whatif;
  // Asking twice gives the same answer, and the live stats never move.
  EXPECT_EQ(daemon.handle_line(R"({"ev": "query", "q": "whatif", "kind": "crash", "a": 0})"),
            whatif);
  EXPECT_EQ(daemon.handle_line(R"({"ev": "query", "q": "stats"})"), before);
}

// --- metrics query & live exposition ----------------------------------------

TEST(DaemonMetrics, MetricsQueryReturnsFullRegistrySnapshot) {
  Daemon daemon(fig1a_shared(), ProtocolKind::kModified, DaemonOptions{});
  daemon.handle_line(
      R"({"ev": "hello", "schema": "ibgp-wire-v1", "instance": "fig1a", "protocol": "modified"})");
  daemon.handle_line(R"({"ev": "announce", "seq": 1, "t": 0, "path": 0})");

  const std::string reply = daemon.handle_line(R"({"ev": "query", "q": "metrics"})");
  EXPECT_FALSE(is_error_reply(reply)) << reply;
  EXPECT_NE(reply.find("\"ev\": \"metrics\""), std::string::npos) << reply;
  EXPECT_NE(reply.find("\"schema\": \"ibgp-metrics-v1\""), std::string::npos);
  EXPECT_NE(reply.find("\"deterministic\""), std::string::npos);
  EXPECT_NE(reply.find("\"volatile\""), std::string::npos);
  EXPECT_NE(reply.find("\"metrics_fingerprint\": \"0x"), std::string::npos);
  EXPECT_NE(reply.find("\"daemon.state_records\""), std::string::npos)
      << "deterministic stream counters ride the snapshot";

  // The per-query-kind latency span lands after its reply is rendered, so
  // the *second* metrics reply carries the first call's sample.
  const std::string second = daemon.handle_line(R"({"ev": "query", "q": "metrics"})");
  EXPECT_NE(second.find("daemon.latency.metrics_ns"), std::string::npos) << second;
}

TEST(DaemonMetrics, ServiceSpansRecordWalFsyncAndCheckpointWrites) {
  const auto dir = fresh_state_dir("spans");
  DaemonOptions options;
  options.state_dir = dir.string();
  options.ckpt_every = 1;  // checkpoint on every accepted record
  Daemon daemon(fig1a_shared(), ProtocolKind::kModified, options);
  daemon.handle_line(
      R"({"ev": "hello", "schema": "ibgp-wire-v1", "instance": "fig1a", "protocol": "modified"})");
  daemon.handle_line(R"({"ev": "announce", "seq": 1, "t": 0, "path": 0})");

  auto count_of = [&](const char* name) {
    for (const auto& sample : daemon.metrics().snapshot()) {
      if (sample.name == name) return sample.total;
    }
    return std::uint64_t{0};
  };
  EXPECT_GE(count_of("daemon.span.wal_fsync_ns"), 1u) << "the announce was journaled";
  EXPECT_GE(count_of("daemon.span.ckpt_write_ns"), 1u) << "ckpt_every=1 checkpointed it";
  EXPECT_GE(count_of("daemon.latency.best_ns"), 0u);  // registered, maybe unsampled
  std::filesystem::remove_all(dir);
}

TEST(DaemonMetrics, ExpositionRendersDaemonRegistryWellFormed) {
  Daemon daemon(fig1a_shared(), ProtocolKind::kModified, DaemonOptions{});
  daemon.handle_line(
      R"({"ev": "hello", "schema": "ibgp-wire-v1", "instance": "fig1a", "protocol": "modified"})");
  daemon.handle_line(R"({"ev": "announce", "seq": 1, "t": 0, "path": 0})");
  daemon.handle_line(R"({"ev": "query", "q": "status"})");

  const std::string text = obs::render_exposition(daemon.metrics().snapshot());
  EXPECT_NE(text.find("# TYPE daemon_state_records_total counter\n"), std::string::npos) << text;
  EXPECT_NE(text.find("daemon_state_records_total 1\n"), std::string::npos);
  // The status query above must have landed one sample in its latency
  // histogram, with correct cumulative rendering.
  EXPECT_NE(text.find("# TYPE daemon_latency_status_ns histogram\n"), std::string::npos);
  EXPECT_NE(text.find("daemon_latency_status_ns_bucket{le=\"+Inf\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("daemon_latency_status_ns_count 1\n"), std::string::npos);

  // Structural sanity over the whole document: cumulative buckets and
  // +Inf == _count for every histogram.
  std::istringstream in(text);
  std::string line;
  std::string base;
  std::uint64_t last = 0, inf = 0;
  std::size_t histograms = 0;
  while (std::getline(in, line)) {
    const auto space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string name = line.substr(0, space);
    const auto bucket = name.find("_bucket{");
    if (bucket != std::string::npos) {
      const std::string this_base = name.substr(0, bucket);
      if (this_base != base) {
        base = this_base;
        last = 0;
        ++histograms;
      }
      const std::uint64_t v = std::stoull(line.substr(space + 1));
      EXPECT_GE(v, last) << "buckets must be cumulative: " << line;
      last = v;
      if (name.find("le=\"+Inf\"") != std::string::npos) inf = v;
    } else if (name.size() > 6 && name.compare(name.size() - 6, 6, "_count") == 0) {
      EXPECT_EQ(std::stoull(line.substr(space + 1)), inf)
          << "+Inf bucket must equal _count: " << line;
    }
  }
  EXPECT_GT(histograms, 5u) << "latency + span histograms all render";
}

TEST(DaemonService, HealthCarriesQueueHwmAndMetricsFileIsWritten) {
  // End-to-end through the threaded service: pipe in a probe stream (the
  // same shape `wire_client --health` emits), collect replies from a
  // tmpfile, and scrape the --metrics-file exposition after drain.
  const auto dir = fresh_state_dir("svc-metrics");
  const std::string metrics_path = (dir / "metrics.prom").string();

  Daemon daemon(fig1a_shared(), ProtocolKind::kModified, DaemonOptions{});
  int fds[2] = {-1, -1};
  ASSERT_EQ(::pipe(fds), 0);
  std::FILE* out = std::tmpfile();
  ASSERT_NE(out, nullptr);

  ServiceOptions options;
  options.watchdog_enabled = false;
  options.metrics_file = metrics_path;
  options.metrics_interval_ms = std::chrono::milliseconds(10);
  DaemonService service(daemon, fds[0], out, options);

  const std::string stream =
      "{\"ev\": \"hello\", \"schema\": \"ibgp-wire-v1\", \"instance\": \"fig1a\", "
      "\"protocol\": \"modified\"}\n"
      "{\"ev\": \"announce\", \"seq\": 1, \"t\": 0, \"path\": 0}\n"
      "{\"ev\": \"query\", \"q\": \"health\"}\n"
      "{\"ev\": \"drain\"}\n";
  std::thread writer([&] {
    (void)!::write(fds[1], stream.data(), stream.size());
    ::close(fds[1]);
  });
  EXPECT_EQ(service.run(), 0);
  writer.join();
  ::close(fds[0]);

  std::string replies;
  std::rewind(out);
  char buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof buf, out)) > 0) replies.append(buf, got);
  std::fclose(out);

  EXPECT_NE(replies.find("\"ev\": \"health\""), std::string::npos) << replies;
  EXPECT_NE(replies.find("\"queue_depth_hwm\""), std::string::npos)
      << "health must report the ingest high-water mark: " << replies;
  EXPECT_NE(replies.find("\"sheds\": 0"), std::string::npos) << replies;
  EXPECT_NE(replies.find("\"ev\": \"drained\""), std::string::npos) << replies;

  // The exporter's final write reflects the drained stream.
  std::ifstream in(metrics_path);
  ASSERT_TRUE(in.is_open()) << metrics_path;
  std::stringstream scraped;
  scraped << in.rdbuf();
  const std::string text = scraped.str();
  EXPECT_NE(text.find("# TYPE daemon_state_records_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("daemon_state_records_total 1\n"), std::string::npos);
  EXPECT_NE(text.find("_bucket{le=\"+Inf\"}"), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(IngestQueue, TracksLiveDepthHighWaterMark) {
  IngestQueue queue(4);
  EXPECT_EQ(queue.max_depth(), 0u);
  queue.push("{\"a\": 1}", /*is_query=*/false);
  queue.push("{\"a\": 2}", /*is_query=*/false);
  queue.push("{\"a\": 3}", /*is_query=*/false);
  EXPECT_EQ(queue.max_depth(), 3u);
  (void)queue.pop();
  (void)queue.pop();
  EXPECT_EQ(queue.depth(), 1u);
  EXPECT_EQ(queue.max_depth(), 3u) << "the HWM never decays";
  queue.push("{\"a\": 4}", /*is_query=*/false);
  EXPECT_EQ(queue.max_depth(), 3u) << "2 live after pops + 1 = 2 < old HWM";
}

}  // namespace
}  // namespace ibgp::daemon
