// Tests for the .topo DSL and the topology builders/generators.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "analysis/finder.hpp"
#include "netsim/validate.hpp"
#include "topo/builder.hpp"
#include "topo/dsl.hpp"
#include "topo/figures.hpp"
#include "topo/random.hpp"

namespace ibgp::topo {
namespace {

constexpr const char* kSample = R"(
# Fig 1(a) in DSL form
instance sample
policy order ebgp-first med per-as
node A reflector 0
node c1 client 0 bgp-id 21
node B reflector 1
node c3 client 1
link A c1 5
link A B 6
link B c3 12
exit r1 at c1 as 1 med 0 peer 1001
exit r3 at c3 as 2 med 0 lp 100 len 3 cost 2 peer 1003
)";

TEST(Dsl, ParsesSample) {
  const auto inst = parse_topo(kSample);
  EXPECT_EQ(inst.name(), "sample");
  EXPECT_EQ(inst.node_count(), 4u);
  EXPECT_EQ(inst.exits().size(), 2u);
  EXPECT_EQ(inst.bgp_id(inst.find_node("c1")), 21u);
  const auto& r3 = inst.exits()[inst.exits().find_by_name("r3")];
  EXPECT_EQ(r3.exit_cost, 2);
  EXPECT_EQ(r3.ebgp_peer, 1003u);
  EXPECT_EQ(r3.next_as, 2u);
  EXPECT_TRUE(inst.clusters().is_client(inst.find_node("c3")));
}

TEST(Dsl, PolicyParsing) {
  const auto inst = parse_topo(
      "instance p\npolicy order igp-first med always\nnode A reflector 0\n"
      "exit r at A as 1\n");
  EXPECT_EQ(inst.policy().order, bgp::RuleOrder::kIgpCostFirst);
  EXPECT_EQ(inst.policy().med, bgp::MedMode::kAlwaysCompare);
}

TEST(Dsl, ErrorsCarryLineNumbers) {
  try {
    parse_topo("instance x\nnode A reflector 0\nlink A B 5\n");
    FAIL() << "expected parse error";
  } catch (const std::exception& e) {
    EXPECT_NE(std::string(e.what()).find("<topo>:3:"), std::string::npos) << e.what();
  }
}

TEST(Dsl, RejectsUnknownDirective) {
  EXPECT_THROW(parse_topo("instance x\nfrobnicate\n"), std::runtime_error);
}

TEST(Dsl, RejectsBadRole) {
  EXPECT_THROW(parse_topo("node A emperor 0\n"), std::runtime_error);
}

TEST(Dsl, RejectsEmptyInput) {
  EXPECT_THROW(parse_topo("# nothing\n"), std::runtime_error);
}

TEST(Dsl, RejectsBadExitSyntax) {
  EXPECT_THROW(parse_topo("node A reflector 0\nexit r A as 1\n"), std::runtime_error);
}

TEST(Dsl, CommentsAndBlanksIgnored) {
  const auto inst = parse_topo(
      "\n# hello\ninstance c  # trailing comment\nnode A reflector 0\n\n"
      "exit r at A as 1 # more\n");
  EXPECT_EQ(inst.node_count(), 1u);
}

void expect_equivalent(const core::Instance& a, const core::Instance& b) {
  ASSERT_EQ(a.node_count(), b.node_count());
  ASSERT_EQ(a.exits().size(), b.exits().size());
  EXPECT_EQ(a.policy(), b.policy());
  for (NodeId v = 0; v < a.node_count(); ++v) {
    EXPECT_EQ(a.node_name(v), b.node_name(v));
    EXPECT_EQ(a.bgp_id(v), b.bgp_id(v));
    EXPECT_EQ(a.clusters().cluster_of(v), b.clusters().cluster_of(v));
    EXPECT_EQ(a.clusters().role_of(v), b.clusters().role_of(v));
    for (NodeId w = 0; w < a.node_count(); ++w) {
      EXPECT_EQ(a.physical().link_cost(v, w), b.physical().link_cost(v, w));
      EXPECT_EQ(a.sessions().has_session(v, w), b.sessions().has_session(v, w));
    }
  }
  for (PathId p = 0; p < a.exits().size(); ++p) {
    EXPECT_EQ(a.exits()[p], b.exits()[p]);
  }
}

TEST(Dsl, RoundTripsEveryFigure) {
  for (const auto& [name, inst] : all_figures()) {
    SCOPED_TRACE(name);
    const auto reparsed = parse_topo(write_topo(inst));
    expect_equivalent(inst, reparsed);
  }
}

TEST(Dsl, RoundTripsRandomInstances) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    RandomConfig config;
    config.clusters = 2 + seed % 3;
    config.max_clients = 2;
    config.exits = 4;
    config.second_reflector_prob = 0.3;
    const auto inst = random_instance(config, seed);
    const auto reparsed = parse_topo(write_topo(inst));
    expect_equivalent(inst, reparsed);
  }
}

// --- policy knobs (communities, MED overrides, route-maps) -------------------------

TEST(Dsl, ParsesCommunitiesAndMedOverrides) {
  const auto inst = parse_topo(
      "instance k\npolicy med per-as\nmed-override 2 always\nmed-override 3 ignore\n"
      "node A reflector 0\nexit r at A as 2 comm 1,3\n");
  ASSERT_EQ(inst.policy().med_overrides.size(), 2u);
  EXPECT_EQ(inst.policy().med_mode_for(2), bgp::MedMode::kAlwaysCompare);
  EXPECT_EQ(inst.policy().med_mode_for(3), bgp::MedMode::kIgnore);
  EXPECT_EQ(inst.policy().med_mode_for(1), bgp::MedMode::kPerNeighborAs);
  EXPECT_TRUE(inst.exits()[0].has_community(1));
  EXPECT_TRUE(inst.exits()[0].has_community(3));
  EXPECT_FALSE(inst.exits()[0].has_community(2));
}

TEST(Dsl, RouteMapsApplyAtIngressOnly) {
  const auto inst = parse_topo(
      "instance rm\nnode A reflector 0\nnode B reflector 1\nlink A B 1\n"
      "exit r1 at A as 2 med 3 comm 1\nexit r2 at B as 2 med 3 comm 1\n"
      "route-map A match-comm 1 set-lp 200 set-med 0 add-comm 5\n");
  // Effective attributes: only A's exit was rewritten.
  const auto& e1 = inst.exits()[inst.exits().find_by_name("r1")];
  const auto& e2 = inst.exits()[inst.exits().find_by_name("r2")];
  EXPECT_EQ(e1.local_pref, 200u);
  EXPECT_EQ(e1.med, 0);
  EXPECT_TRUE(e1.has_community(5));
  EXPECT_EQ(e2.local_pref, 100u);
  EXPECT_EQ(e2.med, 3);
  EXPECT_FALSE(e2.has_community(5));
  // Raw attributes survive for serialization.
  EXPECT_EQ(inst.raw_exits()[inst.exits().find_by_name("r1")].local_pref, 100u);
  EXPECT_TRUE(inst.has_ingress_policy());
}

TEST(Dsl, RejectsBadCommunityTag) {
  EXPECT_THROW(parse_topo("node A reflector 0\nexit r at A as 1 comm 32\n"),
               std::runtime_error);
  EXPECT_THROW(parse_topo("node A reflector 0\nexit r at A as 1 comm x\n"),
               std::runtime_error);
}

TEST(Dsl, RejectsBadMedOverride) {
  EXPECT_THROW(parse_topo("med-override 1 sometimes\nnode A reflector 0\n"),
               std::runtime_error);
  EXPECT_THROW(parse_topo("med-override 1\nnode A reflector 0\n"), std::runtime_error);
}

// --- byte- and signature-identical round-trips (write -> parse -> write) -----------

void expect_byte_and_signature_stable(const core::Instance& inst) {
  const std::string text = write_topo(inst);
  const auto reparsed = parse_topo(text);
  EXPECT_EQ(write_topo(reparsed), text);
  for (const auto protocol :
       {core::ProtocolKind::kStandard, core::ProtocolKind::kWalton,
        core::ProtocolKind::kModified}) {
    const auto a = analysis::classify(inst, protocol, 2000);
    const auto b = analysis::classify(reparsed, protocol, 2000);
    EXPECT_EQ(a.round_robin, b.round_robin);
    EXPECT_EQ(a.synchronous, b.synchronous);
  }
}

TEST(Dsl, WriteIsByteStableOnFigures) {
  for (const auto& [name, inst] : all_figures()) {
    SCOPED_TRACE(name);
    expect_byte_and_signature_stable(inst);
  }
}

TEST(Dsl, WriteIsByteStableOnRandomInstances) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    SCOPED_TRACE(seed);
    RandomConfig config;
    config.clusters = 2 + seed % 3;
    config.max_clients = 2;
    config.exits = 4;
    config.second_reflector_prob = 0.25;
    expect_byte_and_signature_stable(random_instance(config, seed));
  }
}

TEST(Dsl, KnobbedInstanceRoundTripsByteIdentical) {
  InstanceBuilder b;
  b.reflector("A", 0);
  b.client("c1", 0);
  b.reflector("B", 1);
  b.link("A", "c1", 2);
  b.link("A", "B", 3);
  b.exit({.name = "r1", .at = "c1", .next_as = 1, .med = 2, .communities = 0b1010});
  b.exit({.name = "r2", .at = "B", .next_as = 2, .med = 1});
  b.route_map("c1", {.match_communities = 1u << 1, .set_local_pref = 150,
                     .add_communities = 1u << 4});
  b.route_map("B", {.match_as = 2, .set_med = 0});
  bgp::SelectionPolicy policy;
  policy.med = bgp::MedMode::kAlwaysCompare;
  policy.med_overrides.push_back({.as = 2, .mode = bgp::MedMode::kIgnore});
  const auto inst = b.build("knobbed", policy);
  expect_byte_and_signature_stable(inst);

  // And the knobs actually survive one full cycle.
  const auto reparsed = parse_topo(write_topo(inst));
  EXPECT_EQ(reparsed.policy(), inst.policy());
  EXPECT_EQ(reparsed.ingress_maps().size(), inst.ingress_maps().size());
  EXPECT_EQ(reparsed.exits()[0], inst.exits()[0]);
  EXPECT_EQ(reparsed.raw_exits()[0], inst.raw_exits()[0]);
}

#ifdef IBGP_FIG1A_TOPO
TEST(Dsl, Fig1aFileRoundTripsByteIdentical) {
  std::ifstream in(IBGP_FIG1A_TOPO);
  ASSERT_TRUE(in) << "missing " << IBGP_FIG1A_TOPO;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const auto inst = parse_topo(buffer.str());
  expect_byte_and_signature_stable(inst);
  // And the file reproduces the paper's Fig 1(a) verdicts.
  EXPECT_TRUE(analysis::classify(inst, core::ProtocolKind::kStandard, 2000).oscillates());
  EXPECT_TRUE(analysis::classify(inst, core::ProtocolKind::kModified, 2000)
                  .converges_always_tested());
}
#endif

// --- builder ------------------------------------------------------------------------

TEST(Builder, RejectsDuplicateLabels) {
  InstanceBuilder b;
  b.reflector("A", 0);
  EXPECT_THROW(b.reflector("A", 1), std::invalid_argument);
}

TEST(Builder, RejectsUnknownLabels) {
  InstanceBuilder b;
  b.reflector("A", 0);
  EXPECT_THROW(b.link("A", "Z", 1), std::invalid_argument);
  EXPECT_THROW(b.exit({.name = "r", .at = "Z", .next_as = 1}), std::invalid_argument);
  EXPECT_THROW(b.bgp_id("Z", 5), std::invalid_argument);
}

TEST(Builder, ClientSessionsSurviveBuild) {
  InstanceBuilder b;
  b.reflector("R", 0);
  b.client("x", 0);
  b.client("y", 0);
  b.link("R", "x", 1);
  b.link("R", "y", 1);
  b.link("x", "y", 1);
  b.client_session("x", "y");
  b.exit({.name = "r", .at = "x", .next_as = 1});
  const auto inst = b.build("cc");
  EXPECT_TRUE(inst.sessions().has_session(inst.find_node("x"), inst.find_node("y")));
}

// --- random generator ------------------------------------------------------------------

TEST(Random, DeterministicPerSeed) {
  RandomConfig config;
  const auto a = random_instance(config, 5);
  const auto b = random_instance(config, 5);
  expect_equivalent(a, b);
}

TEST(Random, DifferentSeedsDiffer) {
  RandomConfig config;
  const auto a = random_instance(config, 5);
  const auto b = random_instance(config, 6);
  // Structure may coincide; the exit tables almost surely differ.
  bool differ = a.node_count() != b.node_count() || a.exits().size() != b.exits().size();
  if (!differ) {
    for (PathId p = 0; p < a.exits().size(); ++p) {
      if (!(a.exits()[p] == b.exits()[p])) {
        differ = true;
        break;
      }
    }
  }
  EXPECT_TRUE(differ);
}

TEST(Random, InstancesAreValidAndConnected) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    RandomConfig config;
    config.clusters = 2 + seed % 4;
    config.max_clients = seed % 3;
    config.second_reflector_prob = 0.25;
    const auto inst = random_instance(config, seed);
    EXPECT_TRUE(inst.physical().connected()) << seed;
    const auto report =
        netsim::validate(inst.physical(), inst.clusters(), inst.sessions());
    EXPECT_TRUE(report.ok()) << seed;
  }
}

TEST(Random, RespectsExitPlacementFlag) {
  RandomConfig config;
  config.clusters = 3;
  config.min_clients = 1;
  config.max_clients = 2;
  config.exits = 6;
  config.exits_at_clients_only = true;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto inst = random_instance(config, seed);
    for (const auto& path : inst.exits().all()) {
      EXPECT_TRUE(inst.clusters().is_client(path.exit_point)) << seed;
    }
  }
}

// Asserts the parse fails AND the diagnostic contains `needle`.
void expect_topo_error(std::string_view text, std::string_view needle) {
  try {
    parse_topo(text);
    FAIL() << "expected parse error containing '" << needle << "'";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos) << e.what();
  }
}

TEST(Dsl, RejectsOutOfRangeIndices) {
  // Negative and oversized values used to wrap silently through a
  // static_cast; now they are diagnosed with the offending line.
  expect_topo_error("node A reflector -1\n", "<topo>:1:");
  expect_topo_error("node A reflector -1\n", "cluster");
  expect_topo_error("node A reflector 99999999\n", "cluster");  // > kMaxClusterId
  expect_topo_error("node A reflector 0 bgp-id -7\n", "bgp-id");
  expect_topo_error("node A reflector 0 bgp-id 4294967296\n", "bgp-id");  // 2^32
  expect_topo_error("node A reflector 0\nexit r at A as -1\n", "<topo>:2:");
  expect_topo_error("node A reflector 0\nexit r at A as 1 med -3\n", "med");
  expect_topo_error("node A reflector 0\nexit r at A as 1 lp -3\n", "lp");
  expect_topo_error("node A reflector 0\nexit r at A as 1 peer -3\n", "peer");
  expect_topo_error("node A reflector 0\nroute-map A set-lp -1\n", "set-lp");
  expect_topo_error("med-override -1 ignore\nnode A reflector 0\n", "as");
}

TEST(Dsl, RejectsNonNumericFields) {
  expect_topo_error("node A reflector zero\n", "cluster");
  expect_topo_error("node A reflector 0\nlink A A x\n", "cost");
  expect_topo_error("node A reflector 0\nexit r at A as one\n", "as");
}

TEST(Dsl, EmptyInputIsDiagnosed) {
  expect_topo_error("", "no nodes defined");
  expect_topo_error("# only a comment\n", "no nodes defined");
}

TEST(Dsl, FileErrorsNameThePath) {
  const std::string path = testing::TempDir() + "ibgp_dsl_bad.topo";
  {
    std::ofstream out(path);
    out << "instance broken\nnode A emperor 0\n";
  }
  try {
    load_topo_file(path);
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    // The diagnostic reads like a compiler error: PATH:LINE: message.
    EXPECT_NE(std::string(e.what()).find(path + ":2:"), std::string::npos) << e.what();
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ibgp::topo
