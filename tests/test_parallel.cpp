// The deterministic parallel sweep contract: parallel_for visits every
// index exactly once for any worker count, exceptions propagate (lowest
// index wins), the fault sweep produces byte-identical per-cell trace
// hashes / fingerprints / JSON for --jobs 1 vs --jobs N, and the logger
// survives concurrent writers without tearing lines.

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include "fault/script.hpp"
#include "fault/sweep.hpp"
#include "topo/figures.hpp"
#include "util/log.hpp"
#include "util/parallel.hpp"

namespace ibgp {
namespace {

using core::ProtocolKind;

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}, std::size_t{16}}) {
    constexpr std::size_t kCount = 1000;
    std::vector<std::atomic<int>> visits(kCount);
    util::parallel_for(kCount, jobs,
                       [&](std::size_t i) { visits[i].fetch_add(1); });
    for (std::size_t i = 0; i < kCount; ++i) {
      ASSERT_EQ(visits[i].load(), 1) << "index " << i << " with jobs=" << jobs;
    }
  }
}

TEST(ParallelFor, ZeroCountIsANoOp) {
  bool ran = false;
  util::parallel_for(0, 8, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelFor, ResolveJobsNeverReturnsZero) {
  EXPECT_GE(util::resolve_jobs(0), 1u);
  EXPECT_EQ(util::resolve_jobs(1), 1u);
  EXPECT_EQ(util::resolve_jobs(7), 7u);
}

TEST(ParallelFor, LowestIndexExceptionWins) {
  // Several indices throw; the rethrown exception must be the lowest-index
  // failure so error reporting is deterministic across worker schedules.
  try {
    util::parallel_for(64, 8, [&](std::size_t i) {
      if (i % 7 == 3) throw std::runtime_error("boom " + std::to_string(i));
    });
    FAIL() << "expected the exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom 3");
  }
}

TEST(ParallelFor, SerialPathPropagatesToo) {
  EXPECT_THROW(
      util::parallel_for(4, 1,
                         [](std::size_t i) {
                           if (i == 2) throw std::logic_error("serial");
                         }),
      std::logic_error);
}

TEST(ParallelFor, ResolveJobsClampsToMaxJobs) {
  EXPECT_EQ(util::resolve_jobs(util::kMaxJobs), util::kMaxJobs);
  EXPECT_EQ(util::resolve_jobs(util::kMaxJobs + 1), util::kMaxJobs);
  EXPECT_EQ(util::resolve_jobs(5000), util::kMaxJobs);
  EXPECT_EQ(util::resolve_jobs(static_cast<std::size_t>(-1)), util::kMaxJobs);
}

TEST(ParallelFor, ParseJobsAcceptsPlainNonNegativeIntegers) {
  EXPECT_EQ(util::parse_jobs("0"), std::size_t{0});  // 0 = all cores, valid
  EXPECT_EQ(util::parse_jobs("1"), std::size_t{1});
  EXPECT_EQ(util::parse_jobs("16"), std::size_t{16});
  EXPECT_EQ(util::parse_jobs("1024"), util::kMaxJobs);
}

TEST(ParallelFor, ParseJobsRejectsGarbage) {
  // Anything a CLI should refuse instead of silently coercing: signs,
  // suffixes, non-digits, empty strings, whitespace, and > kMaxJobs.
  for (const char* bad : {"-1", "-4", "+2", "abc", "12x", "x12", "", " ", " 4",
                          "4 ", "1.5", "0x10", "1025", "88888",
                          "99999999999999999999999999"}) {
    EXPECT_FALSE(util::parse_jobs(bad).has_value()) << "'" << bad << "'";
  }
}

// --- sweep determinism -------------------------------------------------------------

std::vector<fault::SweepCell> make_cells(const core::Instance& fig1a,
                                         const core::Instance& fig3) {
  std::vector<fault::SweepCell> cells;
  for (const core::Instance* inst : {&fig1a, &fig3}) {
    for (const auto protocol :
         {ProtocolKind::kStandard, ProtocolKind::kWalton, ProtocolKind::kModified}) {
      for (const std::uint64_t seed : {1, 2}) {
        fault::FaultScriptConfig config;
        config.seed = seed;
        config.session_flaps = 3;
        config.crashes = 1;
        config.loss_prob = 0.05;
        config.window_start = 20;
        config.window_end = 300;
        fault::SweepCell cell;
        cell.instance = inst;
        cell.protocol = protocol;
        cell.script = fault::make_fault_script(*inst, config);
        cell.options.max_deliveries = 40000;
        cell.group = inst->name();
        cell.seed = seed;
        cells.push_back(std::move(cell));
      }
    }
  }
  return cells;
}

TEST(Sweep, ParallelMatchesSerialHashForHash) {
  const auto fig1a = topo::fig1a();
  const auto fig3 = topo::fig3();
  const auto cells = make_cells(fig1a, fig3);
  ASSERT_GE(cells.size(), 8u) << "the equivalence claim needs a real fan-out";

  const auto serial = fault::run_sweep(cells, 1);
  const auto parallel = fault::run_sweep(cells, 4);
  ASSERT_EQ(serial.cells.size(), cells.size());
  ASSERT_EQ(parallel.cells.size(), cells.size());
  EXPECT_EQ(serial.jobs, 1u);
  EXPECT_GE(parallel.jobs, 2u);

  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(serial.cells[i].trace_hash, parallel.cells[i].trace_hash)
        << "cell " << i << " (" << cells[i].group << ")";
    EXPECT_EQ(serial.cells[i].run.converged, parallel.cells[i].run.converged);
    EXPECT_EQ(serial.cells[i].settle_time, parallel.cells[i].settle_time);
    EXPECT_EQ(serial.cells[i].continuity.blackhole_ticks,
              parallel.cells[i].continuity.blackhole_ticks);
  }
  EXPECT_EQ(serial.fingerprint, parallel.fingerprint);
  EXPECT_EQ(serial.fingerprint, fault::sweep_fingerprint(serial.cells));

  // The machine-readable documents (timing fields suppressed) must be
  // byte-identical — that is the artifact CI diffs.
  EXPECT_EQ(fault::sweep_json(cells, serial, /*include_timing=*/false).dump(),
            fault::sweep_json(cells, parallel, /*include_timing=*/false).dump());
}

TEST(Sweep, RepeatRunsAreBitStable) {
  const auto fig3 = topo::fig3();
  const auto fig1a = topo::fig1a();
  const auto cells = make_cells(fig1a, fig3);
  const auto first = fault::run_sweep(cells, 4);
  const auto second = fault::run_sweep(cells, 4);
  EXPECT_EQ(first.fingerprint, second.fingerprint);
}

// --- concurrent logging smoke (meaningful under TSan) ------------------------------

TEST(Logging, ConcurrentWritersNeverTearLines) {
  auto& logger = util::Logger::instance();
  const auto previous_level = logger.level();

  std::atomic<std::size_t> lines{0};
  std::atomic<std::size_t> torn{0};
  logger.set_sink([&](util::LogLevel, std::string_view message) {
    // The mutex serializes whole lines; each message must arrive intact.
    lines.fetch_add(1);
    if (message.find("tick") == std::string_view::npos) torn.fetch_add(1);
  });
  logger.set_level(util::LogLevel::kInfo);

  constexpr std::size_t kCount = 512;
  util::parallel_for(kCount, 8, [](std::size_t i) {
    IBGP_INFO() << "tick " << i;
  });

  logger.set_sink(nullptr);
  logger.set_level(previous_level);
  EXPECT_EQ(lines.load(), kCount);
  EXPECT_EQ(torn.load(), 0u);
}

}  // namespace
}  // namespace ibgp
