// Unit tests for the utility substrate: deterministic RNG, hashing, string
// helpers and the CLI flag parser.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdio>
#include <map>
#include <numeric>
#include <set>

#include "util/flags.hpp"
#include "util/hash.hpp"
#include "util/json.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace ibgp::util {
namespace {

// --- rng -------------------------------------------------------------------

TEST(SplitMix64, DeterministicAcrossInstances) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro256, Deterministic) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, BelowRespectsBound) {
  Xoshiro256 rng(123);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, (1ULL << 40)}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Xoshiro256, BelowOneIsAlwaysZero) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Xoshiro256, RangeInclusive) {
  Xoshiro256 rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // every value hit
}

TEST(Xoshiro256, BelowIsRoughlyUniform) {
  Xoshiro256 rng(2024);
  std::array<int, 8> buckets{};
  constexpr int kDraws = 80000;
  for (int i = 0; i < kDraws; ++i) ++buckets[rng.below(8)];
  for (const int count : buckets) {
    EXPECT_NEAR(count, kDraws / 8, kDraws / 8 * 0.1);
  }
}

TEST(Xoshiro256, ChanceExtremes) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Xoshiro256, Uniform01InRange) {
  Xoshiro256 rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Xoshiro256, ShuffleIsPermutation) {
  Xoshiro256 rng(11);
  std::vector<int> items(50);
  std::iota(items.begin(), items.end(), 0);
  auto shuffled = items;
  rng.shuffle(std::span<int>(shuffled));
  EXPECT_NE(shuffled, items);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(DeriveSeed, ChildrenAreDistinct) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 1000; ++i) seeds.insert(derive_seed(99, i));
  EXPECT_EQ(seeds.size(), 1000u);
}

// --- hash --------------------------------------------------------------------

TEST(Hash, Fnv1aMatchesKnownVector) {
  // FNV-1a 64-bit of empty string is the offset basis.
  EXPECT_EQ(fnv1a(std::string_view{}), 0xcbf29ce484222325ULL);
  EXPECT_NE(fnv1a("a"), fnv1a("b"));
}

TEST(Hash, CombineOrderSensitive) {
  const auto ab = hash_combine(hash_combine(0, 1), 2);
  const auto ba = hash_combine(hash_combine(0, 2), 1);
  EXPECT_NE(ab, ba);
}

TEST(Fingerprint, OrderAndContentSensitive) {
  Fingerprint a, b, c;
  a.add(1).add(2);
  b.add(2).add(1);
  c.add(1).add(2);
  EXPECT_NE(a.value(), b.value());
  EXPECT_EQ(a.value(), c.value());
}

TEST(Fingerprint, StringsMix) {
  Fingerprint a, b;
  a.add("hello");
  b.add("hellp");
  EXPECT_NE(a.value(), b.value());
}

// --- strings -----------------------------------------------------------------

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\t\n a b \r"), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(Strings, SplitWsSkipsRuns) {
  const auto parts = split_ws("  a \t b\n c  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, ParseI64) {
  EXPECT_EQ(parse_i64("42"), 42);
  EXPECT_EQ(parse_i64("-7"), -7);
  EXPECT_EQ(parse_i64(" 13 "), 13);
  EXPECT_FALSE(parse_i64("12x"));
  EXPECT_FALSE(parse_i64(""));
  EXPECT_FALSE(parse_i64("4.5"));
}

TEST(Strings, ParseU64RejectsNegative) {
  EXPECT_EQ(parse_u64("18446744073709551615"), 18446744073709551615ULL);
  EXPECT_FALSE(parse_u64("-1"));
}

TEST(Strings, ParseF64) {
  EXPECT_DOUBLE_EQ(parse_f64("2.5").value(), 2.5);
  EXPECT_FALSE(parse_f64("nope"));
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Strings, StartsWithAndLower) {
  EXPECT_TRUE(starts_with("--flag", "--"));
  EXPECT_FALSE(starts_with("-", "--"));
  EXPECT_EQ(to_lower("AbC"), "abc");
}

// --- flags -------------------------------------------------------------------

TEST(Flags, ParsesAllKinds) {
  Flags flags("prog", "test");
  flags.add_string("name", "default", "a string");
  flags.add_int("count", 3, "an int");
  flags.add_double("ratio", 0.5, "a double");
  flags.add_bool("verbose", false, "a bool");

  const char* argv[] = {"prog", "--name=xyz", "--count", "7", "--ratio=1.5", "--verbose"};
  ASSERT_TRUE(flags.parse(6, argv)) << flags.error();
  EXPECT_EQ(flags.get_string("name"), "xyz");
  EXPECT_EQ(flags.get_int("count"), 7);
  EXPECT_DOUBLE_EQ(flags.get_double("ratio"), 1.5);
  EXPECT_TRUE(flags.get_bool("verbose"));
}

TEST(Flags, NoPrefixDisablesBool) {
  Flags flags("prog", "test");
  flags.add_bool("feature", true, "a bool");
  const char* argv[] = {"prog", "--no-feature"};
  ASSERT_TRUE(flags.parse(2, argv));
  EXPECT_FALSE(flags.get_bool("feature"));
}

TEST(Flags, RejectsUnknown) {
  Flags flags("prog", "test");
  const char* argv[] = {"prog", "--mystery"};
  EXPECT_FALSE(flags.parse(2, argv));
  EXPECT_NE(flags.error().find("mystery"), std::string_view::npos);
}

TEST(Flags, RejectsBadInt) {
  Flags flags("prog", "test");
  flags.add_int("n", 0, "int");
  const char* argv[] = {"prog", "--n=abc"};
  EXPECT_FALSE(flags.parse(2, argv));
}

TEST(Flags, PositionalCollected) {
  Flags flags("prog", "test");
  const char* argv[] = {"prog", "one", "two"};
  ASSERT_TRUE(flags.parse(3, argv));
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[1], "two");
}

TEST(Flags, HelpRequested) {
  Flags flags("prog", "test");
  const char* argv[] = {"prog", "--help"};
  ASSERT_TRUE(flags.parse(2, argv));
  EXPECT_TRUE(flags.help_requested());
  EXPECT_NE(flags.help_text().find("prog"), std::string::npos);
}

// --- log ---------------------------------------------------------------------

TEST(Log, LevelsFilter) {
  auto& logger = Logger::instance();
  std::vector<std::string> captured;
  logger.set_sink([&](LogLevel, std::string_view message) {
    captured.emplace_back(message);
  });
  logger.set_level(LogLevel::kWarn);
  IBGP_INFO() << "hidden";
  IBGP_WARN() << "shown " << 42;
  logger.set_level(LogLevel::kWarn);
  logger.set_sink(nullptr);
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0], "shown 42");
}

TEST(Log, ParseLevelNames) {
  EXPECT_EQ(parse_log_level("trace"), LogLevel::kTrace);
  EXPECT_EQ(parse_log_level("ERROR"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("bogus"), LogLevel::kInfo);
  EXPECT_EQ(log_level_name(LogLevel::kDebug), "DEBUG");
}

// --- json parser ------------------------------------------------------------

TEST(Json, ParsesEverythingTheBuilderEmits) {
  json::Object inner;
  inner.emplace_back("s", "quote \" backslash \\ newline \n tab \t");
  inner.emplace_back("i", std::int64_t{-42});
  inner.emplace_back("u", std::uint64_t{18446744073709551615ull});
  inner.emplace_back("d", 1.5);
  inner.emplace_back("t", true);
  inner.emplace_back("n", nullptr);
  json::Array arr;
  arr.emplace_back(1);
  arr.emplace_back("two");
  arr.emplace_back(json::Array{});
  json::Object top;
  top.emplace_back("inner", std::move(inner));
  top.emplace_back("arr", std::move(arr));
  const json::Value doc{std::move(top)};

  for (const std::string text : {doc.dump(), doc.dump_compact()}) {
    const auto parsed = json::parse(text);
    ASSERT_TRUE(parsed.has_value()) << text;
    EXPECT_EQ(parsed->dump(), doc.dump());
    const auto& in = parsed->at("inner");
    EXPECT_EQ(in.at("s").as_string(), "quote \" backslash \\ newline \n tab \t");
    EXPECT_EQ(in.at("i").as_int(), -42);
    EXPECT_EQ(in.at("u").as_uint(), 18446744073709551615ull);
    EXPECT_EQ(in.at("d").as_double(), 1.5);
    EXPECT_TRUE(in.at("t").as_bool());
    EXPECT_TRUE(in.at("n").is_null());
    EXPECT_EQ(parsed->at("arr").as_array().size(), 3u);
  }
}

TEST(Json, ParsesStandardConstructs) {
  const auto v = json::parse(R"(  {"a": [1, 2.5e2, -3], "b": {"c": "A😀"}} )");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->at("a").as_array()[1].as_double(), 250.0);
  EXPECT_EQ(v->at("a").as_array()[2].as_int(), -3);
  EXPECT_EQ(v->at("b").at("c").as_string(), "A\xF0\x9F\x98\x80");  // UTF-8 😀
}

TEST(Json, RejectsMalformedDocuments) {
  std::string error;
  for (const char* bad : {
           "",                    // empty
           "{",                   // truncated object
           "[1, 2",               // truncated array
           "{\"a\": }",           // missing value
           "{\"a\": 1,}",         // trailing comma
           "{'a': 1}",            // single quotes
           "{\"a\": 1} trailing", // garbage after document
           "nul",                 // bad literal
           "01",                  // leading zero
           "1.",                  // bare decimal point
           "\"unterminated",      // unterminated string
           "\"bad \\x escape\"",  // invalid escape
           "{\"a\" 1}",           // missing colon
       }) {
    error.clear();
    EXPECT_FALSE(json::parse(bad, &error).has_value()) << bad;
    EXPECT_NE(error.find("offset"), std::string::npos) << bad << " -> " << error;
  }
}

TEST(Json, TypedAccessorsThrowOnMismatch) {
  const auto v = json::parse(R"({"s": "x", "n": 3.5, "neg": -1})").value();
  EXPECT_THROW((void)v.at("s").as_int(), std::runtime_error);
  EXPECT_THROW((void)v.at("n").as_int(), std::runtime_error);     // not integral
  EXPECT_THROW((void)v.at("neg").as_uint(), std::runtime_error);  // negative
  EXPECT_THROW((void)v.at("s").as_array(), std::runtime_error);
  EXPECT_THROW((void)v.at("missing"), std::runtime_error);
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_NE(v.find("s"), nullptr);
}

TEST(Json, IntegerAccessorsAcceptExactCrossKindValues) {
  // A parsed non-negative integer may land as uint; as_int must accept it
  // while it fits, and vice versa.
  const auto v = json::parse(R"({"u": 7, "big": 9223372036854775808})").value();
  EXPECT_EQ(v.at("u").as_int(), 7);
  EXPECT_EQ(v.at("u").as_uint(), 7u);
  EXPECT_EQ(v.at("big").as_uint(), 9223372036854775808ull);
  EXPECT_THROW((void)v.at("big").as_int(), std::runtime_error);  // > int64 max
}

TEST(Json, AtomicWriteRoundTrips) {
  const std::string path = testing::TempDir() + "ibgp_json_atomic.json";
  json::Object o;
  o.emplace_back("k", "v");
  ASSERT_TRUE(json::write_file_atomic(path, json::Value{std::move(o)}));
  std::string error;
  const auto back = json::read_file(path, &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(back->at("k").as_string(), "v");
  std::remove(path.c_str());
  EXPECT_FALSE(json::read_file(path, &error).has_value());
  EXPECT_NE(error.find(path), std::string::npos);
}

TEST(Json, AtomicWriteReplacesExistingContent) {
  const std::string path = testing::TempDir() + "ibgp_json_atomic_overwrite.json";
  json::Object first;
  first.emplace_back("gen", 1);
  ASSERT_TRUE(json::write_file_atomic(path, json::Value{std::move(first)}));
  json::Object second;
  second.emplace_back("gen", 2);
  ASSERT_TRUE(json::write_file_atomic(path, json::Value{std::move(second)}));
  const auto back = json::read_file(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->at("gen").as_int(), 2);
  std::remove(path.c_str());
}

TEST(Json, NestingDepthIsBounded) {
  // 100 nested arrays: fine under the default limit (96 is plenty for every
  // schema this repo emits — deeper input is hostile), fatal under a tight one.
  std::string deep;
  for (int i = 0; i < 40; ++i) deep += '[';
  deep += '1';
  for (int i = 0; i < 40; ++i) deep += ']';
  EXPECT_TRUE(json::parse(deep).has_value());

  json::ParseOptions tight;
  tight.max_depth = 8;
  std::string error;
  EXPECT_FALSE(json::parse(deep, tight, &error).has_value());
  EXPECT_NE(error.find("too deep"), std::string::npos) << error;

  // Objects count against the same budget.
  std::string deep_obj = R"({"a": {"a": {"a": {"a": {"a": {"a": {"a": {"a": {"a": 1}}}}}}}}})";
  EXPECT_TRUE(json::parse(deep_obj).has_value());
  EXPECT_FALSE(json::parse(deep_obj, tight, &error).has_value());
}

TEST(Json, DuplicateObjectKeysAreRejectedByDefault) {
  std::string error;
  EXPECT_FALSE(json::parse(R"({"a": 1, "a": 2})", &error).has_value());
  EXPECT_NE(error.find("duplicate"), std::string::npos) << error;
  // Nested duplicates too.
  EXPECT_FALSE(json::parse(R"({"outer": {"x": 1, "x": 2}})").has_value());

  // Opt-out keeps last-wins legacy behavior available for foreign input.
  json::ParseOptions lax;
  lax.reject_duplicate_keys = false;
  const auto v = json::parse(R"({"a": 1, "a": 2})", lax);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->as_object().size(), 2u);
}

}  // namespace
}  // namespace ibgp::util
