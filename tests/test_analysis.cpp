// Analysis-module tests: exact stable-configuration search, forwarding-plane
// loop detection (Fig 14 / Fig 12), determinism measurement, and the
// counterexample finder/classifier.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "analysis/determinism.hpp"
#include "analysis/finder.hpp"
#include "analysis/forwarding.hpp"
#include "analysis/stable_search.hpp"
#include "engine/activation.hpp"
#include "engine/oscillation.hpp"
#include "topo/builder.hpp"
#include "topo/figures.hpp"

namespace ibgp::analysis {
namespace {

using core::ProtocolKind;

// --- stable search ---------------------------------------------------------------

TEST(StableSearch, Fig1aHasNoStableSolution) {
  const auto result = enumerate_stable_standard(topo::fig1a());
  EXPECT_TRUE(result.exhaustive);
  EXPECT_TRUE(result.solutions.empty());
}

TEST(StableSearch, Fig2HasExactlyTwo) {
  const auto inst = topo::fig2();
  const auto result = enumerate_stable_standard(inst);
  ASSERT_TRUE(result.exhaustive);
  ASSERT_EQ(result.solutions.size(), 2u);
  const PathId r1 = inst.exits().find_by_name("r1");
  const PathId r2 = inst.exits().find_by_name("r2");
  const NodeId rr1 = inst.find_node("RR1");
  const NodeId rr2 = inst.find_node("RR2");
  // One all-r1, one all-r2 (clients keep their own E-BGP routes).
  std::set<std::pair<PathId, PathId>> reflector_choices;
  for (const auto& solution : result.solutions) {
    reflector_choices.insert({solution[rr1], solution[rr2]});
  }
  EXPECT_TRUE(reflector_choices.count({r1, r1}) == 1);
  EXPECT_TRUE(reflector_choices.count({r2, r2}) == 1);
}

TEST(StableSearch, Fig3HasExactlyTwo) {
  const auto result = enumerate_stable_standard(topo::fig3());
  ASSERT_TRUE(result.exhaustive);
  EXPECT_EQ(result.solutions.size(), 2u);
}

TEST(StableSearch, Fig13HasNone) {
  const auto result = enumerate_stable_standard(topo::fig13());
  EXPECT_TRUE(result.exhaustive);
  EXPECT_TRUE(result.solutions.empty());
}

TEST(StableSearch, Fig14HasExactlyOne) {
  const auto result = enumerate_stable_standard(topo::fig14());
  ASSERT_TRUE(result.exhaustive);
  ASSERT_EQ(result.solutions.size(), 1u);
}

TEST(StableSearch, SolutionsVerifyAsStable) {
  for (const auto& [name, inst] : topo::all_figures()) {
    const auto result = enumerate_stable_standard(inst);
    for (const auto& solution : result.solutions) {
      EXPECT_TRUE(is_stable_standard(inst, solution)) << name;
    }
  }
}

TEST(StableSearch, EngineFixedPointsAreFound) {
  // Whenever the standard protocol converges on a figure, the resulting
  // configuration must appear in the enumerated solution set.
  for (const auto& [name, inst] : topo::all_figures()) {
    auto rr = engine::make_round_robin(inst.node_count());
    const auto outcome = engine::run_protocol(inst, ProtocolKind::kStandard, *rr);
    if (outcome.status != engine::RunStatus::kConverged) continue;
    const auto result = enumerate_stable_standard(inst);
    ASSERT_TRUE(result.exhaustive) << name;
    EXPECT_NE(std::find(result.solutions.begin(), result.solutions.end(),
                        outcome.final_best),
              result.solutions.end())
        << name << ": engine fixed point missing from enumeration";
  }
}

TEST(StableSearch, IsStableRejectsPerturbations) {
  const auto inst = topo::fig2();
  const auto result = enumerate_stable_standard(inst);
  ASSERT_FALSE(result.solutions.empty());
  auto perturbed = result.solutions.front();
  // Swap a reflector's choice to the other exit: no longer a fixed point.
  const NodeId rr1 = inst.find_node("RR1");
  perturbed[rr1] = perturbed[rr1] == inst.exits().find_by_name("r1")
                       ? inst.exits().find_by_name("r2")
                       : inst.exits().find_by_name("r1");
  EXPECT_FALSE(is_stable_standard(inst, perturbed));
}

TEST(StableSearch, BudgetHonored) {
  StableSearchLimits limits;
  limits.max_nodes = 10;
  const auto result = enumerate_stable_standard(topo::fig13(), limits);
  EXPECT_FALSE(result.exhaustive);
  EXPECT_LE(result.nodes_explored, 11u);
}

TEST(StableSearch, WrongSizeRejected) {
  EXPECT_FALSE(is_stable_standard(topo::fig2(), StableSolution{}));
}

// --- forwarding -------------------------------------------------------------------

TEST(Forwarding, Fig14StandardLoops) {
  const auto inst = topo::fig14();
  auto rr = engine::make_round_robin(inst.node_count());
  const auto outcome = engine::run_protocol(inst, ProtocolKind::kStandard, *rr);
  ASSERT_EQ(outcome.status, engine::RunStatus::kConverged);
  const auto report = analyze_forwarding(inst, outcome.final_best);
  EXPECT_FALSE(report.loop_free());
  // Both clients are caught in the c1 <-> c2 loop.
  EXPECT_EQ(report.traces[inst.find_node("c1")].outcome, ForwardOutcome::kLoop);
  EXPECT_EQ(report.traces[inst.find_node("c2")].outcome, ForwardOutcome::kLoop);
  // The reflectors themselves exit fine (they own the routes).
  EXPECT_EQ(report.traces[inst.find_node("RR1")].outcome, ForwardOutcome::kExits);
}

TEST(Forwarding, Fig14ModifiedLoopFree) {
  const auto inst = topo::fig14();
  auto rr = engine::make_round_robin(inst.node_count());
  const auto outcome = engine::run_protocol(inst, ProtocolKind::kModified, *rr);
  ASSERT_EQ(outcome.status, engine::RunStatus::kConverged);
  const auto report = analyze_forwarding(inst, outcome.final_best);
  EXPECT_TRUE(report.loop_free());
  for (const auto& trace : report.traces) {
    EXPECT_EQ(trace.outcome, ForwardOutcome::kExits);
  }
}

TEST(Forwarding, NoRouteDetected) {
  const auto inst = topo::fig14();
  std::vector<PathId> best(inst.node_count(), kNoPath);
  const auto report = analyze_forwarding(inst, best);
  EXPECT_EQ(report.no_route, inst.node_count());
}

TEST(Forwarding, TraceRendering) {
  const auto inst = topo::fig14();
  auto rr = engine::make_round_robin(inst.node_count());
  const auto outcome = engine::run_protocol(inst, ProtocolKind::kStandard, *rr);
  const auto trace = trace_forwarding(inst, outcome.final_best, inst.find_node("c1"));
  const auto text = describe_trace(inst, trace);
  EXPECT_NE(text.find("LOOP"), std::string::npos);
  EXPECT_NE(text.find("c1"), std::string::npos);
}

TEST(Forwarding, IntermediateNodeDivertsViaOwnExit) {
  // The Fig 12 phenomenon: an intermediate node with its own E-BGP route
  // sends the packet out itself rather than following the source's plan.
  topo::InstanceBuilder b;
  b.reflector("u", 0);
  b.reflector("w", 1);
  b.reflector("x", 2);
  b.link("u", "w", 1);
  b.link("w", "x", 1);
  b.exit({.name = "far", .at = "x", .next_as = 1, .med = 0});
  b.exit({.name = "mid", .at = "w", .next_as = 2, .med = 0});
  const auto inst = b.build("fig12");
  std::vector<PathId> best(3, kNoPath);
  best[inst.find_node("u")] = inst.exits().find_by_name("far");
  best[inst.find_node("w")] = inst.exits().find_by_name("mid");
  best[inst.find_node("x")] = inst.exits().find_by_name("far");
  const auto trace = trace_forwarding(inst, best, inst.find_node("u"));
  EXPECT_EQ(trace.outcome, ForwardOutcome::kExits);
  EXPECT_EQ(trace.exit_node, inst.find_node("w"))
      << "packet must leave at w's exit, not reach x";
  EXPECT_EQ(trace.exit_path, inst.exits().find_by_name("mid"));
}

// --- determinism --------------------------------------------------------------------

TEST(Determinism, ModifiedIsDeterministicOnFigures) {
  for (const auto& [name, inst] : topo::all_figures()) {
    DeterminismOptions options;
    options.runs = 60;
    const auto report = check_determinism(inst, ProtocolKind::kModified, options);
    EXPECT_TRUE(report.deterministic()) << name << ": " << report.outcomes.size()
                                        << " outcomes, " << report.not_converged
                                        << " non-converged";
    EXPECT_EQ(report.converged, 60u) << name;
  }
}

TEST(Determinism, ModifiedSurvivesCrashes) {
  DeterminismOptions options;
  options.runs = 60;
  options.crash_prob = 1.0;  // crash a random node mid-run, every run
  const auto report = check_determinism(topo::fig2(), ProtocolKind::kModified, options);
  EXPECT_TRUE(report.deterministic());
}

TEST(Determinism, StandardIsNondeterministicOnFig2) {
  DeterminismOptions options;
  options.runs = 120;
  const auto report = check_determinism(topo::fig2(), ProtocolKind::kStandard, options);
  EXPECT_GE(report.outcomes.size(), 2u)
      << "fig2 must reach both stable solutions across random schedules";
}

TEST(Determinism, StepStatisticsPopulated) {
  DeterminismOptions options;
  options.runs = 20;
  const auto report = check_determinism(topo::fig14(), ProtocolKind::kModified, options);
  EXPECT_EQ(report.converged, 20u);
  EXPECT_GT(report.mean_steps, 0.0);
  EXPECT_LE(report.min_steps, report.max_steps);
}

// --- classifier / finder --------------------------------------------------------------

TEST(Classifier, FigureSignatures) {
  EXPECT_TRUE(classify(topo::fig1a(), ProtocolKind::kStandard).oscillates());
  EXPECT_TRUE(classify(topo::fig1a(), ProtocolKind::kWalton).converges_always_tested());
  EXPECT_TRUE(classify(topo::fig1a(), ProtocolKind::kModified).converges_always_tested());
  EXPECT_TRUE(classify(topo::fig13(), ProtocolKind::kWalton).oscillates());
  EXPECT_TRUE(classify(topo::fig13(), ProtocolKind::kModified).converges_always_tested());
}

TEST(Finder, FindsStandardOscillatorQuickly) {
  topo::RandomConfig config;
  config.clusters = 3;
  config.max_clients = 2;
  config.exits = 4;
  FinderCriteria criteria;
  criteria.protocol = ProtocolKind::kStandard;
  criteria.med_induced = false;
  criteria.modified_converges = true;
  criteria.max_steps = 2000;
  const auto result = find_counterexample(config, criteria, /*seed=*/1, /*attempts=*/5000);
  ASSERT_TRUE(result.found.has_value()) << "no standard-protocol oscillator in 5000 tries";
  EXPECT_TRUE(classify(*result.found, ProtocolKind::kStandard, 2000).oscillates());
  EXPECT_TRUE(
      classify(*result.found, ProtocolKind::kModified, 2000).converges_always_tested());
}

TEST(Finder, ReturnsEmptyWhenCriteriaImpossible) {
  topo::RandomConfig config;
  config.clusters = 2;
  config.exits = 1;  // a single route cannot oscillate
  FinderCriteria criteria;
  criteria.protocol = ProtocolKind::kModified;  // provably never oscillates
  const auto result = find_counterexample(config, criteria, 1, 200);
  EXPECT_FALSE(result.found.has_value());
  EXPECT_EQ(result.attempts_used, 200u);
}

}  // namespace
}  // namespace ibgp::analysis
