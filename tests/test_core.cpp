// Core-module tests: the Transfer relation (Section 4), the level function
// and its lemmas (Section 7), the three advertisement policies, and the
// closed-form fixed point of the modified protocol.

#include <gtest/gtest.h>

#include "core/fixed_point.hpp"
#include "core/instance.hpp"
#include "core/levels.hpp"
#include "core/policy.hpp"
#include "core/transfer.hpp"
#include "topo/builder.hpp"
#include "topo/figures.hpp"
#include "topo/random.hpp"

namespace ibgp::core {
namespace {

// A two-cluster instance with every role represented:
//   cluster 0: reflectors RA, RB; clients ca1, ca2 (exit at ca1 and at RA)
//   cluster 1: reflector RC; client cc (exit at cc)
struct TransferFixture {
  core::Instance inst;
  NodeId ra, rb, ca1, ca2, rc, cc;
  PathId p_client_a;  // exits at ca1 (cluster 0 client)
  PathId p_refl_a;    // exits at RA (cluster 0 reflector)
  PathId p_client_c;  // exits at cc (cluster 1 client)

  static TransferFixture make() {
    topo::InstanceBuilder b;
    const NodeId ra = b.reflector("RA", 0);
    const NodeId rb = b.reflector("RB", 0);
    const NodeId ca1 = b.client("ca1", 0);
    const NodeId ca2 = b.client("ca2", 0);
    const NodeId rc = b.reflector("RC", 1);
    const NodeId cc = b.client("cc", 1);
    b.link("RA", "RB", 1);
    b.link("RA", "ca1", 1);
    b.link("RA", "ca2", 1);
    b.link("RB", "ca1", 1);
    b.link("RB", "ca2", 1);
    b.link("RA", "RC", 1);
    b.link("RC", "cc", 1);
    b.exit({.name = "pa", .at = "ca1", .next_as = 1, .med = 0});
    b.exit({.name = "pr", .at = "RA", .next_as = 2, .med = 0});
    b.exit({.name = "pc", .at = "cc", .next_as = 3, .med = 0});
    core::Instance inst = b.build("transfer-fixture");
    const PathId pa = inst.exits().find_by_name("pa");
    const PathId pr = inst.exits().find_by_name("pr");
    const PathId pc = inst.exits().find_by_name("pc");
    return TransferFixture{std::move(inst), ra, rb, ca1, ca2, rc, cc, pa, pr, pc};
  }
};

// --- Transfer condition 1: own E-BGP routes go to every peer ------------------

TEST(Transfer, OwnExitToEveryPeer) {
  const auto f = TransferFixture::make();
  // RA owns p_refl_a and peers with RB, RC, ca1, ca2.
  EXPECT_TRUE(transfer_allowed(f.inst, f.ra, f.rb, f.p_refl_a));
  EXPECT_TRUE(transfer_allowed(f.inst, f.ra, f.rc, f.p_refl_a));
  EXPECT_TRUE(transfer_allowed(f.inst, f.ra, f.ca1, f.p_refl_a));
  EXPECT_TRUE(transfer_allowed(f.inst, f.ra, f.ca2, f.p_refl_a));
}

TEST(Transfer, ClientOwnExitOnlyToItsReflectors) {
  const auto f = TransferFixture::make();
  EXPECT_TRUE(transfer_allowed(f.inst, f.ca1, f.ra, f.p_client_a));
  EXPECT_TRUE(transfer_allowed(f.inst, f.ca1, f.rb, f.p_client_a));
  // No session to anything else, so no transfer.
  EXPECT_FALSE(transfer_allowed(f.inst, f.ca1, f.rc, f.p_client_a));
  EXPECT_FALSE(transfer_allowed(f.inst, f.ca1, f.cc, f.p_client_a));
}

// --- condition 2: reflector relays CLIENT exits cross-cluster -----------------

TEST(Transfer, ReflectorRelaysClientExitToOtherClusters) {
  const auto f = TransferFixture::make();
  EXPECT_TRUE(transfer_allowed(f.inst, f.ra, f.rc, f.p_client_a));
}

TEST(Transfer, ReflectorDoesNotRelayReflectorExitCrossCluster) {
  const auto f = TransferFixture::make();
  // p_refl_a exits at RA (a reflector), so RB may NOT relay it to RC —
  // only RA itself announces it (condition 1).
  EXPECT_FALSE(transfer_allowed(f.inst, f.rb, f.rc, f.p_refl_a));
}

TEST(Transfer, ReflectorDoesNotRelayForeignClientExitOnward) {
  const auto f = TransferFixture::make();
  // RC heard p_client_a from RA; exitPoint is not RC's client, so RC must
  // not relay it to other reflectors (prevents mesh loops).
  EXPECT_FALSE(transfer_allowed(f.inst, f.rc, f.ra, f.p_client_a));
  EXPECT_FALSE(transfer_allowed(f.inst, f.rc, f.rb, f.p_client_a));
}

TEST(Transfer, NoClientRelayBetweenSameClusterReflectors) {
  const auto f = TransferFixture::make();
  // Condition 2 requires different clusters: RA may not relay ca1's exit to
  // RB (they are both in cluster 0); RB hears it from ca1 directly.
  EXPECT_FALSE(transfer_allowed(f.inst, f.ra, f.rb, f.p_client_a));
}

// --- condition 3: reflector to own clients ------------------------------------

TEST(Transfer, ReflectorSendsEverythingToOwnClientsExceptTheirOwn) {
  const auto f = TransferFixture::make();
  EXPECT_TRUE(transfer_allowed(f.inst, f.ra, f.ca2, f.p_client_a));
  EXPECT_TRUE(transfer_allowed(f.inst, f.ra, f.ca1, f.p_client_c));
  EXPECT_TRUE(transfer_allowed(f.inst, f.rc, f.cc, f.p_refl_a));
  // ...but never a client's own exit back to it.
  EXPECT_FALSE(transfer_allowed(f.inst, f.ra, f.ca1, f.p_client_a));
  EXPECT_FALSE(transfer_allowed(f.inst, f.rc, f.cc, f.p_client_c));
}

TEST(Transfer, RequiresSessionEdge) {
  const auto f = TransferFixture::make();
  // cc and ca1 have no session; nothing transfers in either direction.
  EXPECT_FALSE(transfer_allowed(f.inst, f.cc, f.ca1, f.p_client_c));
  // And never self-transfer.
  EXPECT_FALSE(transfer_allowed(f.inst, f.ra, f.ra, f.p_refl_a));
}

TEST(Transfer, NodeNeverReceivesItsOwnExit) {
  const auto f = TransferFixture::make();
  for (NodeId v = 0; v < f.inst.node_count(); ++v) {
    EXPECT_FALSE(transfer_allowed(f.inst, v, f.ca1, f.p_client_a));
    EXPECT_FALSE(transfer_allowed(f.inst, v, f.ra, f.p_refl_a));
  }
}

TEST(Transfer, TransferSetFiltersAndSorts) {
  const auto f = TransferFixture::make();
  const std::vector<PathId> advertised{f.p_client_c, f.p_refl_a, f.p_client_a};
  const auto to_rc = transfer_set(f.inst, f.ra, f.rc, advertised);
  // RA may send RC its own exit and its client's exit, not cc's exit.
  EXPECT_EQ(to_rc, (std::vector<PathId>{f.p_client_a, f.p_refl_a}));
}

// --- levels (Section 7) --------------------------------------------------------

TEST(Levels, MatchesDefinition) {
  const auto f = TransferFixture::make();
  // p_client_a exits at ca1 (client, cluster 0).
  EXPECT_EQ(level_of(f.inst, f.p_client_a, f.ca1), 0);
  EXPECT_EQ(level_of(f.inst, f.p_client_a, f.ra), 1);
  EXPECT_EQ(level_of(f.inst, f.p_client_a, f.rb), 1);
  EXPECT_EQ(level_of(f.inst, f.p_client_a, f.ca2), 2);
  EXPECT_EQ(level_of(f.inst, f.p_client_a, f.rc), 2);
  EXPECT_EQ(level_of(f.inst, f.p_client_a, f.cc), 3);
}

TEST(Levels, Lemma71TransferNeverGoesDownOrFlat) {
  // Lemma 7.1: if level_p(u) >= level_p(w) then p is not transferable u->w.
  const auto f = TransferFixture::make();
  for (PathId p = 0; p < f.inst.exits().size(); ++p) {
    for (NodeId u = 0; u < f.inst.node_count(); ++u) {
      for (NodeId w = 0; w < f.inst.node_count(); ++w) {
        if (u == w) continue;
        if (level_of(f.inst, p, u) >= level_of(f.inst, p, w)) {
          EXPECT_FALSE(transfer_allowed(f.inst, u, w, p))
              << "path " << p << " transferred " << u << "->" << w << " against levels";
        }
      }
    }
  }
}

TEST(Levels, Lemma73LowerLevelSupplierExists) {
  // Lemma 7.3: every node at level > 0 has a session peer at strictly lower
  // level that may transfer the path to it.  Checked on the fixture and on
  // random instances.
  const auto f = TransferFixture::make();
  for (PathId p = 0; p < f.inst.exits().size(); ++p) {
    for (NodeId u = 0; u < f.inst.node_count(); ++u) {
      if (level_of(f.inst, p, u) == 0) {
        EXPECT_EQ(lower_level_supplier(f.inst, p, u), kNoNode);
      } else {
        EXPECT_NE(lower_level_supplier(f.inst, p, u), kNoNode)
            << "no supplier for path " << p << " at node " << u;
      }
    }
  }
}

TEST(Levels, Lemma73OnRandomInstances) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    topo::RandomConfig config;
    config.clusters = 3;
    config.max_clients = 2;
    config.second_reflector_prob = 0.3;
    config.exits = 5;
    const auto inst = topo::random_instance(config, seed);
    for (PathId p = 0; p < inst.exits().size(); ++p) {
      for (NodeId u = 0; u < inst.node_count(); ++u) {
        if (level_of(inst, p, u) > 0) {
          ASSERT_NE(lower_level_supplier(inst, p, u), kNoNode) << "seed " << seed;
        }
      }
    }
  }
}

// --- policies -------------------------------------------------------------------

TEST(Policy, StandardAdvertisesExactlyBest) {
  const auto inst = topo::fig1a();
  const PathId r1 = inst.exits().find_by_name("r1");
  const PathId r2 = inst.exits().find_by_name("r2");
  const NodeId a = inst.find_node("A");
  const std::vector<bgp::Candidate> possible{{r1, 1}, {r2, 2}};
  const auto decision = decide(inst, ProtocolKind::kStandard, a, possible);
  ASSERT_TRUE(decision.best);
  EXPECT_EQ(decision.best->path, r2);  // metric 4 < 5
  EXPECT_EQ(decision.advertised, (std::vector<PathId>{r2}));
}

TEST(Policy, ModifiedAdvertisesMedSurvivorsAndPicksFromThem) {
  const auto inst = topo::fig1a();
  const PathId r1 = inst.exits().find_by_name("r1");
  const PathId r2 = inst.exits().find_by_name("r2");
  const PathId r3 = inst.exits().find_by_name("r3");
  const NodeId a = inst.find_node("A");
  const std::vector<bgp::Candidate> possible{{r1, 1}, {r2, 2}, {r3, 3}};
  const auto decision = decide(inst, ProtocolKind::kModified, a, possible);
  // GoodExits: r2 MED-eliminated by r3; r1 and r3 survive.
  EXPECT_EQ(decision.advertised, (std::vector<PathId>{r1, r3}));
  ASSERT_TRUE(decision.best);
  EXPECT_EQ(decision.best->path, r1) << "best chosen from GoodExits (Section 6)";
}

TEST(Policy, ModifiedBestIgnoresNonSurvivors) {
  // Even when the MED-eliminated route has the lowest metric, the modified
  // protocol must not select it (best over GoodExits, not PossibleExits).
  const auto inst = topo::fig1a();
  const PathId r2 = inst.exits().find_by_name("r2");
  const PathId r3 = inst.exits().find_by_name("r3");
  const NodeId a = inst.find_node("A");
  const std::vector<bgp::Candidate> possible{{r2, 2}, {r3, 3}};
  const auto decision = decide(inst, ProtocolKind::kModified, a, possible);
  ASSERT_TRUE(decision.best);
  EXPECT_EQ(decision.best->path, r3);
  EXPECT_EQ(decision.advertised, (std::vector<PathId>{r3}));
}

TEST(Policy, WaltonAdvertisesBestPerAs) {
  const auto inst = topo::fig1a();
  const PathId r1 = inst.exits().find_by_name("r1");
  const PathId r2 = inst.exits().find_by_name("r2");
  const PathId r3 = inst.exits().find_by_name("r3");
  const NodeId a = inst.find_node("A");
  const std::vector<bgp::Candidate> possible{{r1, 1}, {r2, 2}, {r3, 3}};
  const auto advertised = walton_advertised(inst, a, possible);
  // AS1 best = r1; AS2 best = r3 (MED).  r2 is hidden.
  EXPECT_EQ(advertised, (std::vector<PathId>{r1, r3}));
}

TEST(Policy, WaltonFiltersByLocalPrefAndLength) {
  topo::InstanceBuilder b;
  b.reflector("R", 0);
  b.reflector("S", 1);
  b.link("R", "S", 1);
  b.exit({.name = "good", .at = "R", .next_as = 1, .med = 0, .local_pref = 200});
  b.exit({.name = "weak", .at = "S", .next_as = 2, .med = 0, .local_pref = 100});
  const auto inst = b.build("walton-filter");
  const PathId good = inst.exits().find_by_name("good");
  const PathId weak = inst.exits().find_by_name("weak");
  const std::vector<bgp::Candidate> possible{{good, 1}, {weak, 2}};
  const auto advertised = walton_advertised(inst, inst.find_node("R"), possible);
  // weak is AS2's best but has lower LOCAL-PREF than the overall best.
  EXPECT_EQ(advertised, (std::vector<PathId>{good}));
  (void)weak;
}

TEST(Policy, EmptyPossibleGivesEmptyDecision) {
  const auto inst = topo::fig1a();
  for (const auto kind :
       {ProtocolKind::kStandard, ProtocolKind::kWalton, ProtocolKind::kModified}) {
    const auto decision = decide(inst, kind, 0, {});
    EXPECT_FALSE(decision.best);
    EXPECT_TRUE(decision.advertised.empty());
  }
}

TEST(Policy, Names) {
  EXPECT_STREQ(protocol_name(ProtocolKind::kStandard), "standard");
  EXPECT_STREQ(protocol_name(ProtocolKind::kWalton), "walton");
  EXPECT_STREQ(protocol_name(ProtocolKind::kModified), "modified");
}

// --- fixed point ------------------------------------------------------------------

TEST(FixedPoint, Fig1aPrediction) {
  const auto inst = topo::fig1a();
  const auto prediction = predict_fixed_point(inst);
  const PathId r1 = inst.exits().find_by_name("r1");
  const PathId r3 = inst.exits().find_by_name("r3");
  EXPECT_EQ(prediction.s_prime, (std::vector<PathId>{r1, r3}));
  // A, c1, c2, B all pick r1; c3 keeps its own E-BGP route r3.
  EXPECT_EQ(prediction.best[inst.find_node("A")]->path, r1);
  EXPECT_EQ(prediction.best[inst.find_node("B")]->path, r1);
  EXPECT_EQ(prediction.best[inst.find_node("c1")]->path, r1);
  EXPECT_EQ(prediction.best[inst.find_node("c2")]->path, r1);
  EXPECT_EQ(prediction.best[inst.find_node("c3")]->path, r3);
}

TEST(FixedPoint, EverySPrimeMemberVisibleEverywhere) {
  for (const auto& [name, inst] : topo::all_figures()) {
    const auto prediction = predict_fixed_point(inst);
    for (NodeId v = 0; v < inst.node_count(); ++v) {
      for (const PathId p : prediction.s_prime) {
        EXPECT_TRUE(std::binary_search(prediction.possible[v].begin(),
                                       prediction.possible[v].end(), p))
            << name << ": path " << p << " not visible at node " << v;
      }
    }
  }
}

TEST(FixedPoint, WithdrawnExitsExcluded) {
  const auto inst = topo::fig1a();
  const PathId r1 = inst.exits().find_by_name("r1");
  const PathId r2 = inst.exits().find_by_name("r2");
  const PathId r3 = inst.exits().find_by_name("r3");
  // Without r3, the MED elimination of r2 never happens: S' = {r1, r2}.
  const std::vector<PathId> announced{r1, r2};
  const auto prediction = predict_fixed_point(inst, announced);
  EXPECT_EQ(prediction.s_prime, (std::vector<PathId>{r1, r2}));
  EXPECT_EQ(prediction.best[inst.find_node("A")]->path, r2);
  (void)r3;
}

TEST(FixedPoint, EmptyAnnouncedMeansNoRoutes) {
  const auto inst = topo::fig1a();
  const auto prediction = predict_fixed_point(inst, std::vector<PathId>{});
  EXPECT_TRUE(prediction.s_prime.empty());
  for (const auto& best : prediction.best) EXPECT_FALSE(best.has_value());
}

// --- instance validation -------------------------------------------------------

TEST(Instance, RejectsOutOfRangeExitPoint) {
  netsim::PhysicalGraph g(2);
  g.add_link(0, 1, 1);
  auto layout = netsim::ClusterLayout::full_mesh(2);
  auto sessions = netsim::build_session_graph(layout);
  bgp::ExitTable table;
  bgp::ExitPath path;
  path.exit_point = 9;
  table.add(path);
  EXPECT_THROW(core::Instance("bad", std::move(g), std::move(layout), std::move(sessions),
                              std::move(table)),
               std::invalid_argument);
}

TEST(Instance, NodeNamesDefaultAndLookup) {
  const auto inst = topo::fig1a();
  EXPECT_EQ(inst.node_name(inst.find_node("A")), "A");
  EXPECT_EQ(inst.find_node("nonexistent"), kNoNode);
}

TEST(Instance, WithPolicyKeepsStructure) {
  const auto inst = topo::fig1b();
  bgp::SelectionPolicy policy;
  policy.order = bgp::RuleOrder::kIgpCostFirst;
  const auto alt = inst.with_policy(policy);
  EXPECT_EQ(alt.node_count(), inst.node_count());
  EXPECT_EQ(alt.policy().order, bgp::RuleOrder::kIgpCostFirst);
  EXPECT_EQ(inst.policy().order, bgp::RuleOrder::kPreferEbgpFirst);
}

}  // namespace
}  // namespace ibgp::core
