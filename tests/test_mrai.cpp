// MinRouteAdvertisementInterval (rate-limiting) tests — the Section 9
// mitigation family: dampening slows oscillations, it does not remove them.

#include <gtest/gtest.h>

#include "core/fixed_point.hpp"
#include "engine/event_engine.hpp"
#include "topo/figures.hpp"

namespace ibgp::engine {
namespace {

using core::ProtocolKind;

TEST(Mrai, PersistentOscillationSurvivesDampening) {
  // Fig 1(a) has NO stable configuration: however hard updates are
  // rate-limited, the standard protocol keeps flapping.
  const auto inst = topo::fig1a();
  EventEngine engine(inst, ProtocolKind::kStandard);
  engine.set_mrai(50);
  engine.inject_all_exits();
  const auto result = engine.run(/*max_deliveries=*/20000);
  EXPECT_FALSE(result.converged);
  EXPECT_GT(result.best_flips, 50u);
}

TEST(Mrai, DampeningStretchesTheOscillationInTime) {
  // Same delivery budget, but MRAI batching makes each oscillation period
  // cost far more virtual time: the flap *rate* drops even though the
  // oscillation persists.
  const auto inst = topo::fig1a();

  EventEngine fast(inst, ProtocolKind::kStandard);
  fast.inject_all_exits();
  const auto fast_result = fast.run(5000);

  EventEngine damped(inst, ProtocolKind::kStandard);
  damped.set_mrai(100);
  damped.inject_all_exits();
  const auto damped_result = damped.run(5000);

  ASSERT_FALSE(fast_result.converged);
  ASSERT_FALSE(damped_result.converged);
  EXPECT_GT(damped_result.end_time, fast_result.end_time * 5)
      << "dampened run should burn far more virtual time per delivery";
}

TEST(Mrai, ModifiedConvergesToSameFixedPointUnderMrai) {
  const auto inst = topo::fig1a();
  const auto prediction = core::predict_fixed_point(inst);
  for (const SimTime mrai : {0, 25, 200}) {
    EventEngine engine(inst, ProtocolKind::kModified);
    engine.set_mrai(mrai);
    engine.inject_all_exits();
    const auto result = engine.run();
    ASSERT_TRUE(result.converged) << "mrai " << mrai;
    for (NodeId v = 0; v < inst.node_count(); ++v) {
      const PathId expected = prediction.best[v] ? prediction.best[v]->path : kNoPath;
      EXPECT_EQ(result.final_best[v], expected) << "mrai " << mrai << " node " << v;
    }
  }
}

TEST(Mrai, BatchingCoalescesChurnIntoFewerUpdates) {
  // The withdraw-churn scenario on Fig 3: with batching, intermediate
  // flip-flops within one hold-down window collapse into net diffs, so
  // fewer UPDATE messages cross the wire.
  const auto inst = topo::fig3();
  auto scripted = [&](SimTime mrai) {
    EventEngine engine(inst, ProtocolKind::kStandard);
    engine.set_mrai(mrai);
    for (const char* name : {"r1", "r2", "r3", "r5"}) {
      engine.inject_exit(inst.exits().find_by_name(name), 0);
    }
    engine.inject_exit(inst.exits().find_by_name("r4"), 50);
    engine.inject_exit(inst.exits().find_by_name("r6"), 50);
    engine.withdraw_exit(inst.exits().find_by_name("r3"), 120);
    engine.withdraw_exit(inst.exits().find_by_name("r5"), 180);
    return engine.run(100000);
  };
  const auto plain = scripted(0);
  const auto damped = scripted(400);
  ASSERT_TRUE(plain.converged);
  ASSERT_TRUE(damped.converged);
  EXPECT_EQ(damped.final_best, plain.final_best) << "same outcome, fewer messages";
  EXPECT_LE(damped.updates_sent, plain.updates_sent);
}

TEST(Mrai, ZeroIntervalIsPlainBehavior) {
  const auto inst = topo::fig14();
  EventEngine a(inst, ProtocolKind::kStandard);
  EventEngine b(inst, ProtocolKind::kStandard);
  b.set_mrai(0);
  a.inject_all_exits();
  b.inject_all_exits();
  const auto ra = a.run();
  const auto rb = b.run();
  EXPECT_EQ(ra.final_best, rb.final_best);
  EXPECT_EQ(ra.updates_sent, rb.updates_sent);
  EXPECT_EQ(ra.deliveries, rb.deliveries);
}

}  // namespace
}  // namespace ibgp::engine
