// Every behavioral claim the paper makes about its configuration figures,
// machine-checked.  This file is the test-suite counterpart of
// EXPERIMENTS.md: each TEST corresponds to a sentence of Sections 3 and 8.

#include <gtest/gtest.h>

#include <set>

#include "analysis/determinism.hpp"
#include "analysis/finder.hpp"
#include "analysis/forwarding.hpp"
#include "analysis/stable_search.hpp"
#include "core/fixed_point.hpp"
#include "engine/activation.hpp"
#include "engine/oscillation.hpp"
#include "topo/figures.hpp"

namespace ibgp {
namespace {

using core::ProtocolKind;
using engine::RunStatus;

// ===== Figure 1(a): persistent MED oscillation ================================

TEST(Fig1a, NoStableConfigurationExists) {
  const auto result = analysis::enumerate_stable_standard(topo::fig1a());
  ASSERT_TRUE(result.exhaustive);
  EXPECT_TRUE(result.solutions.empty());
}

TEST(Fig1a, StandardOscillatesPersistently) {
  const auto sig = analysis::classify(topo::fig1a(), ProtocolKind::kStandard);
  EXPECT_EQ(sig.round_robin, RunStatus::kCycleDetected);
  EXPECT_EQ(sig.synchronous, RunStatus::kCycleDetected);
}

TEST(Fig1a, OscillationIsMedInduced) {
  // "It is a combination of route reflection and the way in which MEDs are
  // compared" — with MEDs ignored or always-compared, the example settles.
  const auto inst = topo::fig1a();
  for (const auto mode : {bgp::MedMode::kIgnore, bgp::MedMode::kAlwaysCompare}) {
    bgp::SelectionPolicy policy;
    policy.med = mode;
    const auto sig = analysis::classify(inst.with_policy(policy), ProtocolKind::kStandard);
    EXPECT_TRUE(sig.converges_always_tested())
        << "mode " << static_cast<int>(mode) << " should remove the oscillation";
  }
}

TEST(Fig1a, WaltonFixesThisExample) {
  // Section 3: "Walton et al. propose a modification ... which thwarts the
  // oscillation problem in this example."
  const auto sig = analysis::classify(topo::fig1a(), ProtocolKind::kWalton);
  EXPECT_TRUE(sig.converges_always_tested());
}

TEST(Fig1a, ModifiedConvergesDeterministically) {
  analysis::DeterminismOptions options;
  options.runs = 100;
  const auto report =
      analysis::check_determinism(topo::fig1a(), ProtocolKind::kModified, options);
  EXPECT_TRUE(report.deterministic());
}

// ===== Figure 1(b): rule-ordering sensitivity ===================================

TEST(Fig1b, ConvergesUnderDefaultOrdering) {
  // "It converges under our present route selection procedure since B always
  // prefers its E-BGP route to either of the (shorter) routes through A."
  const auto inst = topo::fig1b();
  const auto sig = analysis::classify(inst, ProtocolKind::kStandard);
  EXPECT_TRUE(sig.converges_always_tested());

  auto rr = engine::make_round_robin(inst.node_count());
  const auto outcome = engine::run_protocol(inst, ProtocolKind::kStandard, *rr);
  EXPECT_EQ(outcome.final_best[inst.find_node("B")], inst.exits().find_by_name("rB"));
}

TEST(Fig1b, DivergesUnderRfcOrdering) {
  // "If the order in which the selection rules are applied is changed to the
  // ordering in [18] or [11], it is possible to create persistent
  // oscillations in fully-meshed I-BGP."
  bgp::SelectionPolicy policy;
  policy.order = bgp::RuleOrder::kIgpCostFirst;
  const auto inst = topo::fig1b().with_policy(policy);
  const auto sig = analysis::classify(inst, ProtocolKind::kStandard);
  EXPECT_EQ(sig.round_robin, RunStatus::kCycleDetected);
  const auto stable = analysis::enumerate_stable_standard(inst);
  ASSERT_TRUE(stable.exhaustive);
  EXPECT_TRUE(stable.solutions.empty());
}

TEST(Fig1b, ModifiedConvergesUnderBothOrderings) {
  for (const auto order : {bgp::RuleOrder::kPreferEbgpFirst, bgp::RuleOrder::kIgpCostFirst}) {
    bgp::SelectionPolicy policy;
    policy.order = order;
    const auto sig =
        analysis::classify(topo::fig1b().with_policy(policy), ProtocolKind::kModified);
    EXPECT_TRUE(sig.converges_always_tested());
  }
}

// ===== Figure 2: transient oscillation ==========================================

TEST(Fig2, ExactlyTwoStableSolutions) {
  const auto result = analysis::enumerate_stable_standard(topo::fig2());
  ASSERT_TRUE(result.exhaustive);
  EXPECT_EQ(result.solutions.size(), 2u);
}

TEST(Fig2, SynchronousScheduleOscillatesForever) {
  const auto inst = topo::fig2();
  auto sync = engine::make_full_set(inst.node_count());
  const auto outcome = engine::run_protocol(inst, ProtocolKind::kStandard, *sync);
  EXPECT_EQ(outcome.status, RunStatus::kCycleDetected);
  EXPECT_EQ(outcome.cycle_length, 2u);
}

TEST(Fig2, SequentialSchedulesConvergeToOrderDependentSolutions) {
  const auto inst = topo::fig2();
  const NodeId rr1 = inst.find_node("RR1");
  const NodeId rr2 = inst.find_node("RR2");
  const NodeId c1 = inst.find_node("c1");
  const NodeId c2 = inst.find_node("c2");
  const PathId r1 = inst.exits().find_by_name("r1");
  const PathId r2 = inst.exits().find_by_name("r2");

  // RR1 first: its advertisement of r1 wins; both reflectors settle on r1.
  {
    auto schedule = engine::make_scripted(
        inst.node_count(), {{c1}, {c2}, {rr1}, {rr2}});
    const auto outcome = engine::run_protocol(inst, ProtocolKind::kStandard, *schedule);
    ASSERT_EQ(outcome.status, RunStatus::kConverged);
    EXPECT_EQ(outcome.final_best[rr1], r1);
    EXPECT_EQ(outcome.final_best[rr2], r1);
  }
  // RR2 first: mirrored.
  {
    auto schedule = engine::make_scripted(
        inst.node_count(), {{c1}, {c2}, {rr2}, {rr1}});
    const auto outcome = engine::run_protocol(inst, ProtocolKind::kStandard, *schedule);
    ASSERT_EQ(outcome.status, RunStatus::kConverged);
    EXPECT_EQ(outcome.final_best[rr1], r2);
    EXPECT_EQ(outcome.final_best[rr2], r2);
  }
}

TEST(Fig2, WaltonBehavesExactlyLikeStandard) {
  // "there is only one neighboring AS, so their adaptation behaves exactly
  // the same as for classical I-BGP."
  const auto inst = topo::fig2();
  const auto walton = analysis::classify(inst, ProtocolKind::kWalton);
  const auto standard = analysis::classify(inst, ProtocolKind::kStandard);
  EXPECT_EQ(walton.round_robin, standard.round_robin);
  EXPECT_EQ(walton.synchronous, standard.synchronous);
}

TEST(Fig2, ModifiedAlwaysSameOutcome) {
  analysis::DeterminismOptions options;
  options.runs = 150;
  const auto report =
      analysis::check_determinism(topo::fig2(), ProtocolKind::kModified, options);
  EXPECT_TRUE(report.deterministic());
}

TEST(Fig2, StandardReachesBothOutcomesAcrossSchedules) {
  analysis::DeterminismOptions options;
  options.runs = 150;
  const auto report =
      analysis::check_determinism(topo::fig2(), ProtocolKind::kStandard, options);
  EXPECT_GE(report.outcomes.size(), 2u);
}

// ===== Figure 3: delay-induced transients =======================================

TEST(Fig3, ExactlyTwoStableSolutions) {
  const auto result = analysis::enumerate_stable_standard(topo::fig3());
  ASSERT_TRUE(result.exhaustive);
  ASSERT_EQ(result.solutions.size(), 2u);
}

TEST(Fig3, StandardConvergentButScheduleSensitive) {
  // Unlike Fig 1(a) the mesh converges from a cold start; the transient
  // phenomenon is timing-dependence of WHICH solution is reached (the event
  // engine tests drive the injection-timing side).
  const auto sig = analysis::classify(topo::fig3(), ProtocolKind::kStandard);
  EXPECT_TRUE(sig.converges_always_tested());
}

TEST(Fig3, ModifiedUniqueFixedPoint) {
  const auto inst = topo::fig3();
  const auto prediction = core::predict_fixed_point(inst);
  const PathId r1 = inst.exits().find_by_name("r1");
  const PathId r3 = inst.exits().find_by_name("r3");
  const PathId r5 = inst.exits().find_by_name("r5");
  EXPECT_EQ(prediction.s_prime, (std::vector<PathId>{r1, r3, r5}));
  analysis::DeterminismOptions options;
  options.runs = 100;
  const auto report = analysis::check_determinism(inst, ProtocolKind::kModified, options);
  EXPECT_TRUE(report.deterministic());
}

// ===== Figure 13: the Walton et al. counterexample ==============================

TEST(Fig13, NoStableConfiguration) {
  const auto result = analysis::enumerate_stable_standard(topo::fig13());
  ASSERT_TRUE(result.exhaustive);
  EXPECT_TRUE(result.solutions.empty());
}

TEST(Fig13, WaltonOscillatesPersistently) {
  const auto sig = analysis::classify(topo::fig13(), ProtocolKind::kWalton);
  EXPECT_EQ(sig.round_robin, RunStatus::kCycleDetected);
  EXPECT_EQ(sig.synchronous, RunStatus::kCycleDetected);
}

TEST(Fig13, StandardAlsoOscillates) {
  const auto sig = analysis::classify(topo::fig13(), ProtocolKind::kStandard);
  EXPECT_TRUE(sig.oscillates());
}

TEST(Fig13, OscillationIsMedInduced) {
  // "an example with MED-induced (i.e., not observed if MEDs are absent)
  // persistent oscillations".
  bgp::SelectionPolicy policy;
  policy.med = bgp::MedMode::kIgnore;
  const auto inst = topo::fig13().with_policy(policy);
  for (const auto kind : {ProtocolKind::kStandard, ProtocolKind::kWalton}) {
    const auto sig = analysis::classify(inst, kind);
    EXPECT_TRUE(sig.converges_always_tested())
        << core::protocol_name(kind) << " should converge without MEDs";
  }
}

TEST(Fig13, WaltonNeverConvergesUnderRandomSchedules) {
  analysis::DeterminismOptions options;
  options.runs = 50;
  options.max_steps = 4000;
  const auto report =
      analysis::check_determinism(topo::fig13(), ProtocolKind::kWalton, options);
  EXPECT_EQ(report.converged, 0u);
}

TEST(Fig13, ModifiedConvergesDeterministically) {
  analysis::DeterminismOptions options;
  options.runs = 100;
  const auto report =
      analysis::check_determinism(topo::fig13(), ProtocolKind::kModified, options);
  EXPECT_TRUE(report.deterministic());
  // And the fixed point matches the closed form: S' = {p1, p2, p3, t}.
  const auto inst = topo::fig13();
  const auto prediction = core::predict_fixed_point(inst);
  EXPECT_EQ(prediction.s_prime.size(), 4u);
}

// ===== Figure 14: forwarding loops ===============================================

TEST(Fig14, StandardAndWaltonProduceTheLoop) {
  const auto inst = topo::fig14();
  for (const auto kind : {ProtocolKind::kStandard, ProtocolKind::kWalton}) {
    auto rr = engine::make_round_robin(inst.node_count());
    const auto outcome = engine::run_protocol(inst, kind, *rr);
    ASSERT_EQ(outcome.status, RunStatus::kConverged) << core::protocol_name(kind);
    const auto report = analysis::analyze_forwarding(inst, outcome.final_best);
    EXPECT_FALSE(report.loop_free()) << core::protocol_name(kind);
    const auto& trace = report.traces[inst.find_node("c1")];
    ASSERT_EQ(trace.outcome, analysis::ForwardOutcome::kLoop);
    // The loop is exactly c1 -> c2 -> c1.
    ASSERT_EQ(trace.hops.size(), 3u);
    EXPECT_EQ(trace.hops[0], inst.find_node("c1"));
    EXPECT_EQ(trace.hops[1], inst.find_node("c2"));
    EXPECT_EQ(trace.hops[2], inst.find_node("c1"));
  }
}

TEST(Fig14, ModifiedIsLoopFreeWithCrossedChoices) {
  // "c2 chooses r1 and c1 chooses r2 (lower IGP metric) and there are no
  // routing loops."
  const auto inst = topo::fig14();
  auto rr = engine::make_round_robin(inst.node_count());
  const auto outcome = engine::run_protocol(inst, ProtocolKind::kModified, *rr);
  ASSERT_EQ(outcome.status, RunStatus::kConverged);
  EXPECT_EQ(outcome.final_best[inst.find_node("c1")], inst.exits().find_by_name("r2"));
  EXPECT_EQ(outcome.final_best[inst.find_node("c2")], inst.exits().find_by_name("r1"));
  const auto report = analysis::analyze_forwarding(inst, outcome.final_best);
  EXPECT_TRUE(report.loop_free());
}

// ===== cross-figure invariants ===================================================

TEST(AllFigures, ModifiedConvergesEverywhereToPrediction) {
  for (const auto& [name, inst] : topo::all_figures()) {
    const auto prediction = core::predict_fixed_point(inst);
    for (const bool synchronous : {false, true}) {
      auto seq = synchronous ? engine::make_full_set(inst.node_count())
                             : engine::make_round_robin(inst.node_count());
      const auto outcome = engine::run_protocol(inst, ProtocolKind::kModified, *seq);
      ASSERT_EQ(outcome.status, RunStatus::kConverged) << name;
      for (NodeId v = 0; v < inst.node_count(); ++v) {
        const PathId expected = prediction.best[v] ? prediction.best[v]->path : kNoPath;
        ASSERT_EQ(outcome.final_best[v], expected) << name << " node " << v;
      }
    }
  }
}

TEST(AllFigures, ModifiedForwardingAlwaysLoopFree) {
  for (const auto& [name, inst] : topo::all_figures()) {
    auto rr = engine::make_round_robin(inst.node_count());
    const auto outcome = engine::run_protocol(inst, ProtocolKind::kModified, *rr);
    ASSERT_EQ(outcome.status, RunStatus::kConverged) << name;
    const auto report = analysis::analyze_forwarding(inst, outcome.final_best);
    EXPECT_TRUE(report.loop_free()) << name;
  }
}

TEST(AllFigures, InstancesAreStructurallyValid) {
  for (const auto& [name, inst] : topo::all_figures()) {
    EXPECT_GT(inst.node_count(), 0u) << name;
    EXPECT_GT(inst.exits().size(), 0u) << name;
    EXPECT_TRUE(inst.physical().connected()) << name;
  }
}

}  // namespace
}  // namespace ibgp
