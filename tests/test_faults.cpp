// Fault-injection & resilience tests: session flaps (with Adj-RIB-In flush
// and full re-sync on re-establishment), message loss/duplication, router
// crash/restart, exit-flap storms, the invariant checker that polices state
// under churn, and the determinism guarantee (same seed -> same trace hash).
//
// The empirical claim under test is the operational reading of Section 7:
// the paper's modified protocol must reconverge, with consistent state and
// no forwarding loops, after ANY finite fault burst — while standard I-BGP
// exhibits non-reconverging cases under the same campaigns.

#include <gtest/gtest.h>

#include <set>

#include "analysis/invariants.hpp"
#include "core/fixed_point.hpp"
#include "engine/event_engine.hpp"
#include "fault/campaign.hpp"
#include "fault/script.hpp"
#include "topo/figures.hpp"
#include "util/rng.hpp"

namespace ibgp::fault {
namespace {

using core::ProtocolKind;
using engine::EventEngine;
using engine::SimTime;

void expect_fixed_point(const core::Instance& inst, const std::vector<PathId>& final_best,
                        const std::vector<PathId>& live = {}) {
  const auto prediction = live.empty() ? core::predict_fixed_point(inst)
                                       : core::predict_fixed_point(inst, live);
  for (NodeId v = 0; v < inst.node_count(); ++v) {
    const PathId expected = prediction.best[v] ? prediction.best[v]->path : kNoPath;
    EXPECT_EQ(final_best[v], expected) << inst.node_name(v);
  }
}

// --- session flaps -----------------------------------------------------------------

TEST(Faults, SessionDownFlushesAdjRibInBothWays) {
  const auto inst = topo::fig1a();
  const NodeId a = inst.find_node("A");
  const NodeId b = inst.find_node("B");
  EventEngine engine(inst, ProtocolKind::kModified);
  engine.inject_all_exits(0);
  engine.schedule_session_down(a, b, 1000);  // long after convergence
  const auto result = engine.run();
  ASSERT_TRUE(result.converged);
  EXPECT_FALSE(engine.session_up(a, b));
  for (PathId p = 0; p < inst.exits().size(); ++p) {
    for (const NodeId holder : engine.rib_in(a, p)) EXPECT_NE(holder, b);
    for (const NodeId holder : engine.rib_in(b, p)) EXPECT_NE(holder, a);
  }
  EXPECT_TRUE(engine.advertised_to(a, b).empty());
  EXPECT_TRUE(engine.advertised_to(b, a).empty());
  // The downed A—B mesh link partitions the I-BGP overlay: each side must
  // fall back to routes it can still hear, and state must stay consistent.
  const auto report = analysis::check_invariants(engine);
  EXPECT_TRUE(report.clean()) << analysis::describe_report(report);
}

TEST(Faults, SessionFlapRecoveryRestoresFixedPoint) {
  const auto inst = topo::fig1a();
  const NodeId a = inst.find_node("A");
  const NodeId b = inst.find_node("B");
  EventEngine engine(inst, ProtocolKind::kModified);
  engine.inject_all_exits(0);
  engine.schedule_session_down(a, b, 1000);
  engine.schedule_session_up(a, b, 1050);
  const auto result = engine.run();
  ASSERT_TRUE(result.converged);
  EXPECT_TRUE(engine.session_up(a, b));
  expect_fixed_point(inst, result.final_best);
  const auto report = analysis::check_invariants(engine);
  EXPECT_TRUE(report.clean()) << analysis::describe_report(report);
  EXPECT_EQ(result.faults_applied, 2u);
}

TEST(Faults, SessionResetVoidsInFlightMessages) {
  // Slow messages + a quick flap while they are in flight: the pre-reset
  // messages must die with the session instead of populating the RIB of the
  // re-established one.
  const auto inst = topo::fig2();
  // A session incident to an exit point carries UPDATEs from t=0 on.
  const NodeId exit_point = inst.exits()[0].exit_point;
  const NodeId peer = inst.sessions().peers(exit_point)[0];
  EventEngine engine(inst, ProtocolKind::kModified,
                     [](NodeId, NodeId, std::uint64_t) -> SimTime { return 40; });
  engine.inject_all_exits(0);
  engine.schedule_session_down(exit_point, peer, 10);
  engine.schedule_session_up(exit_point, peer, 20);
  const auto result = engine.run();
  ASSERT_TRUE(result.converged);
  EXPECT_GT(result.deliveries_voided, 0u);
  expect_fixed_point(inst, result.final_best);
  const auto report = analysis::check_invariants(engine);
  EXPECT_TRUE(report.clean()) << analysis::describe_report(report);
}

TEST(Faults, DownedSessionStaysSilent) {
  // While a session is down, churn elsewhere must not leak messages across
  // it: flap an exit during the outage and check the RIBs stay flushed.
  const auto inst = topo::fig1a();
  const NodeId a = inst.find_node("A");
  const NodeId b = inst.find_node("B");
  const PathId r1 = inst.exits().find_by_name("r1");
  EventEngine engine(inst, ProtocolKind::kModified);
  engine.inject_all_exits(0);
  engine.schedule_session_down(a, b, 1000);
  engine.withdraw_exit(r1, 1100);
  engine.inject_exit(r1, 1200);
  const auto result = engine.run();
  ASSERT_TRUE(result.converged);
  for (PathId p = 0; p < inst.exits().size(); ++p) {
    for (const NodeId holder : engine.rib_in(b, p)) EXPECT_NE(holder, a);
  }
  const auto report = analysis::check_invariants(engine);
  EXPECT_TRUE(report.clean()) << analysis::describe_report(report);
}

// --- crash / restart ---------------------------------------------------------------

TEST(Faults, CrashWithdrawsTheRoutersExitsEverywhere) {
  const auto inst = topo::fig1a();
  const NodeId c3 = inst.find_node("c3");  // owns r3, one of the two S' routes
  const PathId r3 = inst.exits().find_by_name("r3");
  EventEngine engine(inst, ProtocolKind::kModified);
  engine.inject_all_exits(0);
  engine.schedule_crash(c3, 1000);
  const auto result = engine.run();
  ASSERT_TRUE(result.converged);
  EXPECT_FALSE(engine.node_up(c3));
  EXPECT_EQ(result.final_best[c3], kNoPath);
  for (NodeId v = 0; v < inst.node_count(); ++v) {
    EXPECT_NE(result.final_best[v], r3) << inst.node_name(v);
    EXPECT_TRUE(engine.rib_in(v, r3).empty()) << inst.node_name(v);
  }
  // Survivors must agree with the fixed point over the remaining exits.
  const auto prediction = core::predict_fixed_point(
      inst, std::vector<PathId>{inst.exits().find_by_name("r1"),
                                inst.exits().find_by_name("r2")});
  for (NodeId v = 0; v < inst.node_count(); ++v) {
    if (!engine.node_up(v)) continue;
    const PathId expected = prediction.best[v] ? prediction.best[v]->path : kNoPath;
    EXPECT_EQ(result.final_best[v], expected) << inst.node_name(v);
  }
  const auto report = analysis::check_invariants(engine);
  EXPECT_TRUE(report.clean()) << analysis::describe_report(report);
}

TEST(Faults, CrashRestartRelearnsOwnExitsAndRestoresFixedPoint) {
  const auto inst = topo::fig1a();
  const NodeId c3 = inst.find_node("c3");
  EventEngine engine(inst, ProtocolKind::kModified);
  engine.inject_all_exits(0);
  engine.schedule_crash(c3, 1000);
  engine.schedule_restart(c3, 1080);
  const auto result = engine.run();
  ASSERT_TRUE(result.converged);
  EXPECT_TRUE(engine.node_up(c3));
  expect_fixed_point(inst, result.final_best);
  const auto report = analysis::check_invariants(engine);
  EXPECT_TRUE(report.clean()) << analysis::describe_report(report);
}

TEST(Faults, EbgpWithdrawDuringOutageIsNotResurrected) {
  // r3's external origin withdraws while c3 is down: the restart must NOT
  // re-learn the dead route (the E-BGP origin state, not the router's
  // memory, decides what comes back).
  const auto inst = topo::fig1a();
  const NodeId c3 = inst.find_node("c3");
  const PathId r3 = inst.exits().find_by_name("r3");
  EventEngine engine(inst, ProtocolKind::kModified);
  engine.inject_all_exits(0);
  engine.schedule_crash(c3, 1000);
  engine.withdraw_exit(r3, 1040);
  engine.schedule_restart(c3, 1080);
  const auto result = engine.run();
  ASSERT_TRUE(result.converged);
  EXPECT_FALSE(engine.ebgp_live(r3));
  for (NodeId v = 0; v < inst.node_count(); ++v) {
    EXPECT_NE(result.final_best[v], r3) << inst.node_name(v);
    EXPECT_TRUE(engine.rib_in(v, r3).empty()) << inst.node_name(v);
  }
  const auto report = analysis::check_invariants(engine);
  EXPECT_TRUE(report.clean()) << analysis::describe_report(report);
}

// --- message loss / duplication ----------------------------------------------------

TEST(Faults, DuplicationIsIdempotent) {
  const auto inst = topo::fig1a();
  FaultScriptConfig config;
  config.seed = 7;
  config.dup_prob = 0.5;
  const auto script = make_fault_script(inst, config);
  const auto campaign = run_campaign(inst, ProtocolKind::kModified, script);
  ASSERT_TRUE(campaign.reconverged());
  EXPECT_GT(campaign.run.messages_duplicated, 0u);
  expect_fixed_point(inst, campaign.run.final_best);
  EXPECT_TRUE(campaign.invariants.clean())
      << analysis::describe_report(campaign.invariants);
}

TEST(Faults, LossWithHoldTimerRepairHealsTheRibs) {
  // Drops trigger a session reset after loss_detect_delay (the hold-timer
  // model), which flushes and re-syncs both ends: after quiescence every
  // RIB must match what its peers advertise.
  const auto inst = topo::fig1a();
  for (const std::uint64_t seed : {1, 2, 3, 4, 5}) {
    FaultScriptConfig config;
    config.seed = seed;
    config.loss_prob = 0.15;
    config.loss_detect_delay = 25;
    config.repair_downtime = 10;
    const auto script = make_fault_script(inst, config);
    const auto campaign = run_campaign(inst, ProtocolKind::kModified, script);
    ASSERT_TRUE(campaign.reconverged()) << "seed " << seed;
    EXPECT_GT(campaign.run.messages_dropped, 0u) << "seed " << seed;
    expect_fixed_point(inst, campaign.run.final_best);
    EXPECT_TRUE(campaign.invariants.clean())
        << "seed " << seed << ": " << analysis::describe_report(campaign.invariants);
  }
}

TEST(Faults, UnrepairedLossIsCaughtByTheInvariantChecker) {
  // With detection disabled a dropped UPDATE silently desynchronizes
  // sender and receiver forever.  The checker must notice on at least one
  // seed — this is the negative control proving it can fail.
  const auto inst = topo::fig1a();
  bool caught = false;
  std::size_t dropped = 0;
  for (std::uint64_t seed = 1; seed <= 10 && !caught; ++seed) {
    FaultScriptConfig config;
    config.seed = seed;
    config.loss_prob = 0.3;
    config.loss_detect_delay = 0;  // no repair
    const auto script = make_fault_script(inst, config);
    const auto campaign = run_campaign(inst, ProtocolKind::kModified, script);
    dropped += campaign.run.messages_dropped;
    if (campaign.reconverged() && !campaign.invariants.clean()) caught = true;
  }
  EXPECT_GT(dropped, 0u);
  EXPECT_TRUE(caught) << "30% unrepaired loss never desynchronized a RIB in 10 seeds";
}

// --- exit-flap storms --------------------------------------------------------------

TEST(Faults, ExitFlapStormSettlesToTheFixedPoint) {
  const auto inst = topo::fig3();
  FaultScriptConfig config;
  config.seed = 11;
  config.exit_flaps = 8;
  config.window_start = 50;
  config.window_end = 400;
  const auto script = make_fault_script(inst, config);
  const auto campaign = run_campaign(inst, ProtocolKind::kModified, script);
  ASSERT_TRUE(campaign.reconverged());
  // Every withdraw in the storm is paired with a re-inject, so all exits
  // are live again at the end and the full fixed point must hold.
  expect_fixed_point(inst, campaign.run.final_best);
  EXPECT_TRUE(campaign.invariants.clean())
      << analysis::describe_report(campaign.invariants);
}

// --- determinism -------------------------------------------------------------------

TEST(Faults, SameSeedSameTraceHash) {
  // The acceptance scenario: session flaps + message loss + one router
  // crash/restart on the Fig 3 topology, fully deterministic from the seed.
  const auto inst = topo::fig3();
  FaultScriptConfig config;
  config.seed = 42;
  config.session_flaps = 3;
  config.crashes = 1;
  config.loss_prob = 0.05;
  config.window_start = 20;
  config.window_end = 300;
  const auto script = make_fault_script(inst, config);
  const auto first = run_campaign(inst, ProtocolKind::kModified, script);
  const auto second = run_campaign(inst, ProtocolKind::kModified, script);
  ASSERT_TRUE(first.reconverged());
  EXPECT_EQ(first.trace_hash, second.trace_hash);
  EXPECT_EQ(first.run.final_best, second.run.final_best);
  EXPECT_EQ(first.run.deliveries, second.run.deliveries);
  EXPECT_EQ(first.run.messages_dropped, second.run.messages_dropped);

  config.seed = 43;
  const auto other = run_campaign(inst, ProtocolKind::kModified,
                                  make_fault_script(inst, config));
  EXPECT_NE(first.trace_hash, other.trace_hash) << "different seed, identical trace";
}

TEST(Faults, ScriptGenerationIsDeterministic) {
  const auto inst = topo::fig3();
  FaultScriptConfig config;
  config.seed = 99;
  config.session_flaps = 4;
  config.crashes = 2;
  config.exit_flaps = 3;
  const auto a = make_fault_script(inst, config);
  const auto b = make_fault_script(inst, config);
  ASSERT_EQ(a.actions.size(), b.actions.size());
  ASSERT_EQ(a.actions.size(), 2 * (4 + 2 + 3u));
  for (std::size_t i = 0; i < a.actions.size(); ++i) {
    EXPECT_EQ(a.actions[i].time, b.actions[i].time);
    EXPECT_EQ(a.actions[i].kind, b.actions[i].kind);
    EXPECT_EQ(a.actions[i].a, b.actions[i].a);
    EXPECT_EQ(a.actions[i].b, b.actions[i].b);
    EXPECT_EQ(a.actions[i].path, b.actions[i].path);
  }
  // Sorted by time, and faults only start inside the window.
  for (std::size_t i = 1; i < a.actions.size(); ++i) {
    EXPECT_LE(a.actions[i - 1].time, a.actions[i].time);
  }
}

// --- the Section 7 theorem, empirically --------------------------------------------

TEST(Faults, ModifiedReconvergesAfterEveryFiniteFaultBurst) {
  // Campaign matrix over every paper figure and a batch of seeds: mixed
  // session flaps, crashes, exit flaps, loss and duplication.  The modified
  // protocol must reconverge with clean invariants on ALL of them.
  for (const auto& [name, inst] : topo::all_figures()) {
    for (const std::uint64_t seed : {1, 2, 3}) {
      FaultScriptConfig config;
      config.seed = seed;
      config.session_flaps = 2;
      config.crashes = 1;
      config.exit_flaps = 2;
      config.loss_prob = 0.05;
      config.dup_prob = 0.05;
      config.window_start = 10;
      config.window_end = 400;
      const auto script = make_fault_script(inst, config);
      const auto campaign = run_campaign(inst, ProtocolKind::kModified, script);
      ASSERT_TRUE(campaign.reconverged()) << name << " seed " << seed;
      EXPECT_TRUE(campaign.invariants.clean())
          << name << " seed " << seed << ": "
          << analysis::describe_report(campaign.invariants);
    }
  }
}

TEST(Faults, StandardHasANonReconvergingCaseInTheMatrix) {
  // The same campaign shape finds at least one case where standard I-BGP
  // never drains its queue (fig1a has no stable configuration at all, and
  // fig3's delay symmetry sustains the Table-1 oscillation).
  std::size_t failures = 0;
  for (const auto& [name, inst] : topo::all_figures()) {
    for (const std::uint64_t seed : {1, 2, 3}) {
      FaultScriptConfig config;
      config.seed = seed;
      config.session_flaps = 2;
      config.exit_flaps = 2;
      config.window_start = 10;
      config.window_end = 400;
      const auto script = make_fault_script(inst, config);
      CampaignOptions options;
      options.max_deliveries = 60000;
      const auto campaign = run_campaign(inst, ProtocolKind::kStandard, script, options);
      if (!campaign.reconverged()) ++failures;
    }
  }
  EXPECT_GT(failures, 0u);
}

// --- graceful restart --------------------------------------------------------------

TEST(GracefulRestart, GracefulDownRetainsStalePathsAndKeepsForwarding) {
  const auto inst = topo::fig1a();
  const NodeId c3 = inst.find_node("c3");  // owns r3
  const PathId r3 = inst.exits().find_by_name("r3");
  EventEngine engine(inst, ProtocolKind::kModified);
  engine.inject_all_exits(0);
  engine.schedule_graceful_down(c3, 1000);  // long after convergence
  const auto result = engine.run();
  ASSERT_TRUE(result.converged);
  EXPECT_FALSE(engine.node_up(c3));
  EXPECT_TRUE(engine.restarting(c3));
  // Peers retained r3 (stale) instead of flushing it: the routing visible
  // to the rest of the AS is exactly the pre-fault fixed point.
  EXPECT_GT(result.stale_retained, 0u);
  const auto prediction = core::predict_fixed_point(inst);
  for (NodeId v = 0; v < inst.node_count(); ++v) {
    if (v == c3) continue;
    const PathId expected = prediction.best[v] ? prediction.best[v]->path : kNoPath;
    EXPECT_EQ(result.final_best[v], expected) << inst.node_name(v);
  }
  // c3's control plane is empty but its frozen FIB keeps forwarding r3.
  EXPECT_EQ(result.final_best[c3], kNoPath);
  EXPECT_EQ(engine.node_forwarding(c3), r3);
  bool any_stale = false;
  for (PathId p = 0; p < inst.exits().size(); ++p) {
    for (NodeId v = 0; v < inst.node_count(); ++v) {
      if (!engine.stale_rib_in(v, p).empty()) any_stale = true;
    }
  }
  EXPECT_TRUE(any_stale);
  const auto report = analysis::check_invariants(engine);
  EXPECT_TRUE(report.clean()) << analysis::describe_report(report);
  EXPECT_GT(report.stale_retained, 0u) << "retention should be visible to the checker";
  // The whole point: no forwarding interruption at any tick.  The run goes
  // quiescent at the graceful-down itself, so extend the horizon to price
  // the open-ended retention window.
  const auto continuity = analysis::check_continuity(engine, result.end_time + 200);
  EXPECT_EQ(continuity.blackhole_ticks, 0u);
  EXPECT_EQ(continuity.loop_ticks, 0u);
  EXPECT_GT(continuity.stale_ticks, 0u) << "the retained window must be priced as stale";
}

TEST(GracefulRestart, WarmRecoveryCompletesWithEorSweep) {
  const auto inst = topo::fig1a();
  const NodeId c3 = inst.find_node("c3");
  EventEngine engine(inst, ProtocolKind::kModified);
  engine.inject_all_exits(0);
  engine.schedule_graceful_down(c3, 1000);
  engine.schedule_restart(c3, 1080);
  const auto result = engine.run();
  ASSERT_TRUE(result.converged);
  EXPECT_TRUE(engine.node_up(c3));
  EXPECT_FALSE(engine.restarting(c3));
  EXPECT_GT(result.eor_markers_sent, 0u);
  EXPECT_GT(result.stale_retained, 0u);
  expect_fixed_point(inst, result.final_best);
  // No stale marks survive a completed recovery.
  for (PathId p = 0; p < inst.exits().size(); ++p) {
    for (NodeId v = 0; v < inst.node_count(); ++v) {
      EXPECT_TRUE(engine.stale_rib_in(v, p).empty()) << inst.node_name(v);
    }
  }
  const auto report = analysis::check_invariants(engine);
  EXPECT_TRUE(report.clean()) << analysis::describe_report(report);
  EXPECT_EQ(report.stale_retained, 0u);
  const auto continuity = analysis::check_continuity(engine, result.end_time);
  EXPECT_EQ(continuity.blackhole_ticks, 0u)
      << "warm recovery must never blackhole on fig1a";
}

TEST(GracefulRestart, StaleTimerExpiryFallsBackToColdFlush) {
  const auto inst = topo::fig1a();
  const NodeId c3 = inst.find_node("c3");
  const PathId r3 = inst.exits().find_by_name("r3");
  EventEngine engine(inst, ProtocolKind::kModified);
  engine.set_stale_timer(50);
  engine.inject_all_exits(0);
  engine.schedule_graceful_down(c3, 1000);  // restart never comes
  const auto result = engine.run();
  ASSERT_TRUE(result.converged);
  EXPECT_GT(result.stale_swept_expired, 0u);
  bool expired_logged = false;
  for (const auto& fault : engine.fault_log()) {
    if (fault.kind == engine::FaultKind::kStaleExpire && fault.a == c3) {
      expired_logged = true;
    }
  }
  EXPECT_TRUE(expired_logged);
  // After expiry the survivors have flushed r3 and settled on the fixed
  // point over the remaining exits — exactly the cold outcome, just later.
  const std::vector<PathId> live{inst.exits().find_by_name("r1"),
                                 inst.exits().find_by_name("r2")};
  const auto prediction = core::predict_fixed_point(inst, live);
  for (NodeId v = 0; v < inst.node_count(); ++v) {
    if (v == c3) continue;
    const PathId expected = prediction.best[v] ? prediction.best[v]->path : kNoPath;
    EXPECT_EQ(result.final_best[v], expected) << inst.node_name(v);
    EXPECT_TRUE(engine.rib_in(v, r3).empty()) << inst.node_name(v);
  }
  const auto report = analysis::check_invariants(engine);
  EXPECT_TRUE(report.clean()) << analysis::describe_report(report);
  EXPECT_EQ(report.stale_retained, 0u);
}

TEST(GracefulRestart, RestartAfterExpiryStillResyncsCleanly) {
  const auto inst = topo::fig1a();
  const NodeId c3 = inst.find_node("c3");
  EventEngine engine(inst, ProtocolKind::kModified);
  engine.set_stale_timer(50);
  engine.inject_all_exits(0);
  engine.schedule_graceful_down(c3, 1000);
  engine.schedule_restart(c3, 1200);  // long after the timer fired
  const auto result = engine.run();
  ASSERT_TRUE(result.converged);
  EXPECT_GT(result.stale_swept_expired, 0u);
  EXPECT_GT(result.eor_markers_sent, 0u);  // sweeps nothing, still sent
  EXPECT_EQ(result.stale_swept_eor, 0u);
  expect_fixed_point(inst, result.final_best);
  const auto report = analysis::check_invariants(engine);
  EXPECT_TRUE(report.clean()) << analysis::describe_report(report);
}

TEST(GracefulRestart, CrashMidRestartCollapsesRetentionToCold) {
  const auto inst = topo::fig1a();
  const NodeId c3 = inst.find_node("c3");
  const PathId r3 = inst.exits().find_by_name("r3");
  EventEngine engine(inst, ProtocolKind::kModified);
  engine.inject_all_exits(0);
  engine.schedule_graceful_down(c3, 1000);
  engine.schedule_crash(c3, 1050);  // the warm recovery fails hard
  const auto result = engine.run();
  ASSERT_TRUE(result.converged);
  EXPECT_FALSE(engine.node_up(c3));
  EXPECT_FALSE(engine.restarting(c3));
  EXPECT_EQ(engine.node_forwarding(c3), kNoPath) << "frozen FIB dies with the crash";
  EXPECT_GT(result.stale_retained, 0u);
  for (NodeId v = 0; v < inst.node_count(); ++v) {
    EXPECT_TRUE(engine.rib_in(v, r3).empty()) << inst.node_name(v);
  }
  const auto report = analysis::check_invariants(engine);
  EXPECT_TRUE(report.clean()) << analysis::describe_report(report);
  EXPECT_EQ(report.stale_retained, 0u);
}

TEST(GracefulRestart, EbgpWithdrawDuringRestartIsSweptNotResurrected) {
  // r3's external origin withdraws mid-restart: the restarting router
  // cannot tell anyone, so peers keep forwarding the stale path until the
  // EoR sweep retires it — then it must be gone for good.
  const auto inst = topo::fig1a();
  const NodeId c3 = inst.find_node("c3");
  const PathId r3 = inst.exits().find_by_name("r3");
  EventEngine engine(inst, ProtocolKind::kModified);
  engine.inject_all_exits(0);
  engine.schedule_graceful_down(c3, 1000);
  engine.withdraw_exit(r3, 1040);
  engine.schedule_restart(c3, 1080);
  const auto result = engine.run();
  ASSERT_TRUE(result.converged);
  EXPECT_FALSE(engine.ebgp_live(r3));
  EXPECT_GT(result.stale_swept_eor, 0u);
  for (NodeId v = 0; v < inst.node_count(); ++v) {
    EXPECT_NE(result.final_best[v], r3) << inst.node_name(v);
    EXPECT_TRUE(engine.rib_in(v, r3).empty()) << inst.node_name(v);
  }
  const auto report = analysis::check_invariants(engine);
  EXPECT_TRUE(report.clean()) << analysis::describe_report(report);
}

TEST(GracefulRestart, PairedScriptsHitTheSameVictimsAtTheSameTimes) {
  const auto inst = topo::fig3();
  FaultScriptConfig config;
  config.seed = 21;
  config.crashes = 2;
  const auto cold = make_fault_script(inst, config);
  config.crashes = 0;
  config.graceful_restarts = 2;
  config.stale_timer = 400;
  const auto warm = make_fault_script(inst, config);
  ASSERT_EQ(cold.actions.size(), warm.actions.size());
  for (std::size_t i = 0; i < cold.actions.size(); ++i) {
    EXPECT_EQ(cold.actions[i].time, warm.actions[i].time);
    EXPECT_EQ(cold.actions[i].a, warm.actions[i].a);
    if (cold.actions[i].kind == FaultAction::Kind::kCrash) {
      EXPECT_EQ(warm.actions[i].kind, FaultAction::Kind::kGracefulDown);
    } else {
      EXPECT_EQ(warm.actions[i].kind, cold.actions[i].kind);
    }
  }
}

TEST(GracefulRestart, GracefulBeatsColdOnBlackholeTime) {
  // The quantitative claim behind the whole feature: over paired campaigns
  // (identical victims, times, and outage lengths — only the restart style
  // differs), graceful restart strictly shrinks the blackhole time, for
  // every protocol variant.
  const auto figures = {topo::fig1a(), topo::fig3()};
  for (const auto protocol : {ProtocolKind::kStandard, ProtocolKind::kWalton,
                              ProtocolKind::kModified}) {
    std::uint64_t cold_blackhole = 0;
    std::uint64_t warm_blackhole = 0;
    for (const auto& inst : figures) {
      for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        FaultScriptConfig config;
        config.seed = seed;
        config.window_start = 50;
        config.window_end = 300;
        config.crashes = 1;
        CampaignOptions options;
        options.max_deliveries = 60000;
        const auto cold =
            run_campaign(inst, protocol, make_fault_script(inst, config), options);
        config.crashes = 0;
        config.graceful_restarts = 1;
        config.stale_timer = 400;
        const auto warm =
            run_campaign(inst, protocol, make_fault_script(inst, config), options);
        cold_blackhole += cold.continuity.blackhole_ticks;
        warm_blackhole += warm.continuity.blackhole_ticks;
      }
    }
    EXPECT_GT(cold_blackhole, warm_blackhole)
        << core::protocol_name(protocol)
        << ": graceful restart must strictly shrink blackhole time";
  }
}

TEST(GracefulRestart, ModifiedReconvergesUnderGracefulCampaignMatrix) {
  // The Section 7 guarantee must survive the new fault kind: graceful
  // restarts mixed with flaps and loss, across every paper figure.
  for (const auto& [name, inst] : topo::all_figures()) {
    for (const std::uint64_t seed : {1, 2, 3}) {
      FaultScriptConfig config;
      config.seed = seed;
      config.session_flaps = 2;
      config.graceful_restarts = 1;
      config.stale_timer = 120;
      config.loss_prob = 0.05;
      config.window_start = 10;
      config.window_end = 400;
      const auto script = make_fault_script(inst, config);
      const auto campaign = run_campaign(inst, ProtocolKind::kModified, script);
      ASSERT_TRUE(campaign.reconverged()) << name << " seed " << seed;
      EXPECT_TRUE(campaign.invariants.clean())
          << name << " seed " << seed << ": "
          << analysis::describe_report(campaign.invariants);
      // Transient micro-loops during the churn window are a measured
      // quantity, not a violation; what must hold at quiescence is a
      // loop-free forwarding plane (part of invariants.clean() above).
    }
  }
}

TEST(GracefulRestart, SameSeedSameTraceHashWithGrEvents) {
  const auto inst = topo::fig3();
  FaultScriptConfig config;
  config.seed = 77;
  config.session_flaps = 2;
  config.graceful_restarts = 2;
  config.stale_timer = 60;
  config.loss_prob = 0.05;
  config.window_start = 20;
  config.window_end = 300;
  const auto script = make_fault_script(inst, config);
  const auto first = run_campaign(inst, ProtocolKind::kModified, script);
  const auto second = run_campaign(inst, ProtocolKind::kModified, script);
  ASSERT_TRUE(first.reconverged());
  EXPECT_GT(first.run.stale_retained, 0u) << "campaign must exercise retention";
  EXPECT_EQ(first.trace_hash, second.trace_hash);
  EXPECT_EQ(first.continuity.blackhole_ticks, second.continuity.blackhole_ticks);
  EXPECT_EQ(first.continuity.stale_ticks, second.continuity.stale_ticks);

  config.seed = 78;
  const auto other =
      run_campaign(inst, ProtocolKind::kModified, make_fault_script(inst, config));
  EXPECT_NE(first.trace_hash, other.trace_hash);
}

TEST(GracefulRestart, RedundantGracefulFaultsAreNoOps) {
  const auto inst = topo::fig1a();
  const NodeId c3 = inst.find_node("c3");
  EventEngine engine(inst, ProtocolKind::kModified);
  engine.inject_all_exits(0);
  engine.schedule_graceful_down(c3, 1000);
  engine.schedule_graceful_down(c3, 1001);  // already restarting
  engine.schedule_restart(c3, 1100);
  engine.schedule_restart(c3, 1101);  // already up
  engine.schedule_graceful_down(inst.find_node("B"), 1200);
  engine.schedule_crash(inst.find_node("B"), 1250);   // converts to cold
  engine.schedule_crash(inst.find_node("B"), 1251);   // already cold: no-op
  engine.schedule_restart(inst.find_node("B"), 1300);
  EXPECT_THROW(engine.schedule_graceful_down(inst.node_count(), 0),
               std::invalid_argument);
  const auto result = engine.run();
  ASSERT_TRUE(result.converged);
  // graceful-down + restart + graceful-down + crash + restart = 5 applied.
  EXPECT_EQ(result.faults_applied, 5u);
  expect_fixed_point(inst, result.final_best);
  const auto report = analysis::check_invariants(engine);
  EXPECT_TRUE(report.clean()) << analysis::describe_report(report);
}

// --- scheduling guards -------------------------------------------------------------

TEST(Faults, ScheduleValidatesTargets) {
  const auto inst = topo::fig1a();
  const NodeId c1 = inst.find_node("c1");
  const NodeId c3 = inst.find_node("c3");
  EventEngine engine(inst, ProtocolKind::kModified);
  // c1 (cluster 0) and c3 (cluster 1) share no session.
  EXPECT_THROW(engine.schedule_session_down(c1, c3, 0), std::invalid_argument);
  EXPECT_THROW(engine.schedule_session_up(c1, c3, 0), std::invalid_argument);
  EXPECT_THROW(engine.schedule_crash(inst.node_count(), 0), std::invalid_argument);
  EXPECT_THROW(engine.schedule_restart(inst.node_count(), 0), std::invalid_argument);
}

TEST(Faults, RedundantFaultsAreNoOps) {
  const auto inst = topo::fig1a();
  const NodeId a = inst.find_node("A");
  const NodeId b = inst.find_node("B");
  EventEngine engine(inst, ProtocolKind::kModified);
  engine.inject_all_exits(0);
  engine.schedule_session_down(a, b, 1000);
  engine.schedule_session_down(a, b, 1001);  // already down
  engine.schedule_session_up(a, b, 1002);
  engine.schedule_session_up(a, b, 1003);  // already up
  engine.schedule_crash(b, 1100);
  engine.schedule_crash(b, 1101);  // already crashed
  engine.schedule_restart(b, 1200);
  engine.schedule_restart(b, 1201);  // already up
  const auto result = engine.run();
  ASSERT_TRUE(result.converged);
  EXPECT_EQ(result.faults_applied, 4u) << "duplicates must not re-apply";
  expect_fixed_point(inst, result.final_best);
  const auto report = analysis::check_invariants(engine);
  EXPECT_TRUE(report.clean()) << analysis::describe_report(report);
}

// --- campaign reporting: budget vs drained, settle time, pending faults -----------

TEST(CampaignReporting, BudgetOnLastDeliveryIsDrainedAndExhausted) {
  // The three budget states must be distinguishable: (converged, !budget)
  // is a normal drain, (converged, budget) drained exactly on the last
  // allowed delivery, (!converged, budget) is a truncation.
  const auto inst = topo::fig1a();
  EventEngine probe(inst, ProtocolKind::kModified);
  probe.inject_all_exits(0);
  const auto full = probe.run();
  ASSERT_TRUE(full.converged);
  EXPECT_FALSE(full.budget_exhausted);
  EXPECT_EQ(full.events_pending, 0u);
  ASSERT_GT(full.deliveries, 1u);

  // Identical run with the budget set to exactly the deliveries needed: the
  // queue drains on the last permitted delivery.
  EventEngine exact(inst, ProtocolKind::kModified);
  exact.inject_all_exits(0);
  const auto drained = exact.run(full.deliveries);
  EXPECT_TRUE(drained.converged);
  EXPECT_TRUE(drained.budget_exhausted);
  EXPECT_EQ(drained.events_pending, 0u);

  // One delivery short: truncated, with the leftover work reported.
  EventEngine cut(inst, ProtocolKind::kModified);
  cut.inject_all_exits(0);
  const auto truncated = cut.run(full.deliveries - 1);
  EXPECT_FALSE(truncated.converged);
  EXPECT_TRUE(truncated.budget_exhausted);
  EXPECT_GE(truncated.events_pending, 1u);
}

TEST(CampaignReporting, FaultsBeyondTruncationAreReportedNotDropped) {
  const auto inst = topo::fig1a();
  const NodeId b = inst.find_node("B");
  EventEngine engine(inst, ProtocolKind::kModified);
  engine.inject_all_exits(0);
  engine.schedule_crash(b, 1'000'000);  // far past anything 5 deliveries reach
  const auto result = engine.run(5);
  ASSERT_FALSE(result.converged);
  EXPECT_TRUE(result.budget_exhausted);
  EXPECT_EQ(result.faults_applied, 0u);
  EXPECT_EQ(result.faults_pending, 1u) << "the unreached crash must be visible";
  EXPECT_EQ(result.next_fault_time, SimTime{1'000'000});

  // The queue stays intact, so resuming applies the fault instead of
  // silently losing it.
  const auto resumed = engine.run();
  ASSERT_TRUE(resumed.converged);
  EXPECT_EQ(resumed.faults_applied, 1u);
  EXPECT_EQ(resumed.faults_pending, 0u);
}

TEST(CampaignReporting, SettleTimeDisengagesOnTruncation) {
  // A campaign cut off by max_deliveries must not claim a settle time of 0
  // — "never settled" and "instantly settled" are different outcomes.
  const auto inst = topo::fig3();
  FaultScriptConfig config;
  config.seed = 3;
  config.session_flaps = 4;
  config.loss_prob = 0.05;
  config.window_start = 20;
  config.window_end = 400;
  const auto script = make_fault_script(inst, config);

  CampaignOptions options;
  options.max_deliveries = 40;  // far below fig3's initial convergence
  const auto campaign = run_campaign(inst, ProtocolKind::kStandard, script, options);
  ASSERT_FALSE(campaign.reconverged());
  EXPECT_TRUE(campaign.truncated());
  EXPECT_TRUE(campaign.run.budget_exhausted);
  EXPECT_FALSE(campaign.settle_time.has_value())
      << "truncated campaigns have no settle time";
  EXPECT_GE(campaign.run.faults_pending, 1u)
      << "the scripted faults beyond the cutoff must be reported";
}

TEST(CampaignReporting, SettleTimeEngagesOnReconvergence) {
  const auto inst = topo::fig3();
  FaultScriptConfig config;
  config.seed = 3;
  config.session_flaps = 4;
  config.loss_prob = 0.05;
  config.window_start = 20;
  config.window_end = 400;
  const auto script = make_fault_script(inst, config);
  const auto campaign = run_campaign(inst, ProtocolKind::kModified, script);
  ASSERT_TRUE(campaign.reconverged());
  ASSERT_TRUE(campaign.settle_time.has_value());
  EXPECT_EQ(*campaign.settle_time, campaign.run.end_time - campaign.last_fault_time);
  EXPECT_EQ(campaign.run.faults_pending, 0u);
}

// --- continuity boundary semantics -------------------------------------------------

void expect_reports_equal(const analysis::ContinuityReport& a,
                          const analysis::ContinuityReport& b) {
  EXPECT_EQ(a.intervals, b.intervals);
  EXPECT_EQ(a.ok_ticks, b.ok_ticks);
  EXPECT_EQ(a.stale_ticks, b.stale_ticks);
  EXPECT_EQ(a.blackhole_ticks, b.blackhole_ticks);
  EXPECT_EQ(a.loop_ticks, b.loop_ticks);
  EXPECT_EQ(a.max_blackhole_window, b.max_blackhole_window);
}

TEST(Continuity, EventExactlyAtHorizonHasNoEffect) {
  // The replay covers the half-open window [0, horizon): a fault (and its
  // same-tick FIB records) landing exactly AT the horizon contributes
  // nothing, and one tick later it does.
  const auto inst = topo::fig1a();
  const NodeId c3 = inst.find_node("c3");
  constexpr SimTime kCrash = 500;

  EventEngine faulted(inst, ProtocolKind::kModified);
  faulted.inject_all_exits(0);
  faulted.schedule_crash(c3, kCrash);
  ASSERT_TRUE(faulted.run().converged);

  EventEngine clean(inst, ProtocolKind::kModified);
  clean.inject_all_exits(0);
  ASSERT_TRUE(clean.run().converged);

  // Horizon == crash time: the crash is invisible, field for field.
  expect_reports_equal(analysis::check_continuity(faulted, kCrash),
                       analysis::check_continuity(clean, kCrash));

  // Horizon one past the crash: the crash tick is priced.  The crashed
  // router originates nothing while cold, so exactly one source-tick of
  // accounting disappears relative to the fault-free run — which also pins
  // that the same-timestamp mode change and FIB record applied *together*
  // (a missed mode change would price c3's cleared FIB as a blackhole
  // instead of excluding it).
  const auto after = analysis::check_continuity(faulted, kCrash + 1);
  const auto after_clean = analysis::check_continuity(clean, kCrash + 1);
  EXPECT_EQ(after.accounted_ticks() + 1, after_clean.accounted_ticks());
  EXPECT_EQ(after.horizon, kCrash + 1);
}

TEST(Continuity, SameTickCrashAndFibChangePriceFromThatTick) {
  // Peers of a crashed router reconsider at the crash tick itself; their
  // same-timestamp FIB flips must take effect for [crash, next) — i.e. the
  // re-routed peers are priced on their NEW entries from the very tick of
  // the fault, not one interval late.
  const auto inst = topo::fig1a();
  const NodeId c3 = inst.find_node("c3");
  constexpr SimTime kCrash = 500;
  EventEngine engine(inst, ProtocolKind::kModified);
  engine.inject_all_exits(0);
  engine.schedule_crash(c3, kCrash);
  const auto result = engine.run();
  ASSERT_TRUE(result.converged);

  bool fib_changed_at_crash_tick = false;
  for (const auto& record : engine.fib_log()) {
    if (record.time == kCrash) fib_changed_at_crash_tick = true;
  }
  ASSERT_TRUE(fib_changed_at_crash_tick)
      << "the scenario must exercise a same-tick fault + FIB change";

  // Every live source is accounted at every tick of [0, horizon): the total
  // accounted ticks must equal sum over sources of (horizon - first-route
  // time), minus the cold-down window of the crashed router.  With all
  // exits injected at t=0 every node has a route from its first FIB write,
  // so spot-check conservation across the crash boundary instead of
  // reconstructing per-node onsets: extending the horizon by one tick adds
  // exactly (live sources) ticks of accounting.
  const SimTime horizon = result.end_time + 10;
  const auto at = analysis::check_continuity(engine, horizon);
  const auto next = analysis::check_continuity(engine, horizon + 1);
  EXPECT_EQ(next.accounted_ticks() - at.accounted_ticks(), inst.node_count() - 1)
      << "post-crash steady state: every node but the cold one is accounted";
}

TEST(Faults, FaultLogIsChronological) {
  const auto inst = topo::fig3();
  FaultScriptConfig config;
  config.seed = 5;
  config.session_flaps = 3;
  config.crashes = 1;
  const auto script = make_fault_script(inst, config);
  engine::EventEngine engine(inst, ProtocolKind::kModified);
  ScriptInjector injector(script);
  engine.set_fault_injector(&injector);
  engine.inject_all_exits(0);
  apply_script(script, engine);
  const auto result = engine.run();
  ASSERT_TRUE(result.converged);
  const auto log = engine.fault_log();
  EXPECT_EQ(result.faults_applied, log.size());
  for (std::size_t i = 1; i < log.size(); ++i) {
    EXPECT_LE(log[i - 1].time, log[i].time);
  }
  for (const auto& fault : log) {
    EXPECT_STRNE(engine::fault_kind_name(fault.kind), "?");
  }
}

}  // namespace
}  // namespace ibgp::fault
