// Fault-injection & resilience tests: session flaps (with Adj-RIB-In flush
// and full re-sync on re-establishment), message loss/duplication, router
// crash/restart, exit-flap storms, the invariant checker that polices state
// under churn, and the determinism guarantee (same seed -> same trace hash).
//
// The empirical claim under test is the operational reading of Section 7:
// the paper's modified protocol must reconverge, with consistent state and
// no forwarding loops, after ANY finite fault burst — while standard I-BGP
// exhibits non-reconverging cases under the same campaigns.

#include <gtest/gtest.h>

#include <set>

#include "analysis/invariants.hpp"
#include "core/fixed_point.hpp"
#include "engine/event_engine.hpp"
#include "fault/campaign.hpp"
#include "fault/script.hpp"
#include "topo/figures.hpp"
#include "util/rng.hpp"

namespace ibgp::fault {
namespace {

using core::ProtocolKind;
using engine::EventEngine;
using engine::SimTime;

void expect_fixed_point(const core::Instance& inst, const std::vector<PathId>& final_best,
                        const std::vector<PathId>& live = {}) {
  const auto prediction = live.empty() ? core::predict_fixed_point(inst)
                                       : core::predict_fixed_point(inst, live);
  for (NodeId v = 0; v < inst.node_count(); ++v) {
    const PathId expected = prediction.best[v] ? prediction.best[v]->path : kNoPath;
    EXPECT_EQ(final_best[v], expected) << inst.node_name(v);
  }
}

// --- session flaps -----------------------------------------------------------------

TEST(Faults, SessionDownFlushesAdjRibInBothWays) {
  const auto inst = topo::fig1a();
  const NodeId a = inst.find_node("A");
  const NodeId b = inst.find_node("B");
  EventEngine engine(inst, ProtocolKind::kModified);
  engine.inject_all_exits(0);
  engine.schedule_session_down(a, b, 1000);  // long after convergence
  const auto result = engine.run();
  ASSERT_TRUE(result.converged);
  EXPECT_FALSE(engine.session_up(a, b));
  for (PathId p = 0; p < inst.exits().size(); ++p) {
    for (const NodeId holder : engine.rib_in(a, p)) EXPECT_NE(holder, b);
    for (const NodeId holder : engine.rib_in(b, p)) EXPECT_NE(holder, a);
  }
  EXPECT_TRUE(engine.advertised_to(a, b).empty());
  EXPECT_TRUE(engine.advertised_to(b, a).empty());
  // The downed A—B mesh link partitions the I-BGP overlay: each side must
  // fall back to routes it can still hear, and state must stay consistent.
  const auto report = analysis::check_invariants(engine);
  EXPECT_TRUE(report.clean()) << analysis::describe_report(report);
}

TEST(Faults, SessionFlapRecoveryRestoresFixedPoint) {
  const auto inst = topo::fig1a();
  const NodeId a = inst.find_node("A");
  const NodeId b = inst.find_node("B");
  EventEngine engine(inst, ProtocolKind::kModified);
  engine.inject_all_exits(0);
  engine.schedule_session_down(a, b, 1000);
  engine.schedule_session_up(a, b, 1050);
  const auto result = engine.run();
  ASSERT_TRUE(result.converged);
  EXPECT_TRUE(engine.session_up(a, b));
  expect_fixed_point(inst, result.final_best);
  const auto report = analysis::check_invariants(engine);
  EXPECT_TRUE(report.clean()) << analysis::describe_report(report);
  EXPECT_EQ(result.faults_applied, 2u);
}

TEST(Faults, SessionResetVoidsInFlightMessages) {
  // Slow messages + a quick flap while they are in flight: the pre-reset
  // messages must die with the session instead of populating the RIB of the
  // re-established one.
  const auto inst = topo::fig2();
  // A session incident to an exit point carries UPDATEs from t=0 on.
  const NodeId exit_point = inst.exits()[0].exit_point;
  const NodeId peer = inst.sessions().peers(exit_point)[0];
  EventEngine engine(inst, ProtocolKind::kModified,
                     [](NodeId, NodeId, std::uint64_t) -> SimTime { return 40; });
  engine.inject_all_exits(0);
  engine.schedule_session_down(exit_point, peer, 10);
  engine.schedule_session_up(exit_point, peer, 20);
  const auto result = engine.run();
  ASSERT_TRUE(result.converged);
  EXPECT_GT(result.deliveries_voided, 0u);
  expect_fixed_point(inst, result.final_best);
  const auto report = analysis::check_invariants(engine);
  EXPECT_TRUE(report.clean()) << analysis::describe_report(report);
}

TEST(Faults, DownedSessionStaysSilent) {
  // While a session is down, churn elsewhere must not leak messages across
  // it: flap an exit during the outage and check the RIBs stay flushed.
  const auto inst = topo::fig1a();
  const NodeId a = inst.find_node("A");
  const NodeId b = inst.find_node("B");
  const PathId r1 = inst.exits().find_by_name("r1");
  EventEngine engine(inst, ProtocolKind::kModified);
  engine.inject_all_exits(0);
  engine.schedule_session_down(a, b, 1000);
  engine.withdraw_exit(r1, 1100);
  engine.inject_exit(r1, 1200);
  const auto result = engine.run();
  ASSERT_TRUE(result.converged);
  for (PathId p = 0; p < inst.exits().size(); ++p) {
    for (const NodeId holder : engine.rib_in(b, p)) EXPECT_NE(holder, a);
  }
  const auto report = analysis::check_invariants(engine);
  EXPECT_TRUE(report.clean()) << analysis::describe_report(report);
}

// --- crash / restart ---------------------------------------------------------------

TEST(Faults, CrashWithdrawsTheRoutersExitsEverywhere) {
  const auto inst = topo::fig1a();
  const NodeId c3 = inst.find_node("c3");  // owns r3, one of the two S' routes
  const PathId r3 = inst.exits().find_by_name("r3");
  EventEngine engine(inst, ProtocolKind::kModified);
  engine.inject_all_exits(0);
  engine.schedule_crash(c3, 1000);
  const auto result = engine.run();
  ASSERT_TRUE(result.converged);
  EXPECT_FALSE(engine.node_up(c3));
  EXPECT_EQ(result.final_best[c3], kNoPath);
  for (NodeId v = 0; v < inst.node_count(); ++v) {
    EXPECT_NE(result.final_best[v], r3) << inst.node_name(v);
    EXPECT_TRUE(engine.rib_in(v, r3).empty()) << inst.node_name(v);
  }
  // Survivors must agree with the fixed point over the remaining exits.
  const auto prediction = core::predict_fixed_point(
      inst, std::vector<PathId>{inst.exits().find_by_name("r1"),
                                inst.exits().find_by_name("r2")});
  for (NodeId v = 0; v < inst.node_count(); ++v) {
    if (!engine.node_up(v)) continue;
    const PathId expected = prediction.best[v] ? prediction.best[v]->path : kNoPath;
    EXPECT_EQ(result.final_best[v], expected) << inst.node_name(v);
  }
  const auto report = analysis::check_invariants(engine);
  EXPECT_TRUE(report.clean()) << analysis::describe_report(report);
}

TEST(Faults, CrashRestartRelearnsOwnExitsAndRestoresFixedPoint) {
  const auto inst = topo::fig1a();
  const NodeId c3 = inst.find_node("c3");
  EventEngine engine(inst, ProtocolKind::kModified);
  engine.inject_all_exits(0);
  engine.schedule_crash(c3, 1000);
  engine.schedule_restart(c3, 1080);
  const auto result = engine.run();
  ASSERT_TRUE(result.converged);
  EXPECT_TRUE(engine.node_up(c3));
  expect_fixed_point(inst, result.final_best);
  const auto report = analysis::check_invariants(engine);
  EXPECT_TRUE(report.clean()) << analysis::describe_report(report);
}

TEST(Faults, EbgpWithdrawDuringOutageIsNotResurrected) {
  // r3's external origin withdraws while c3 is down: the restart must NOT
  // re-learn the dead route (the E-BGP origin state, not the router's
  // memory, decides what comes back).
  const auto inst = topo::fig1a();
  const NodeId c3 = inst.find_node("c3");
  const PathId r3 = inst.exits().find_by_name("r3");
  EventEngine engine(inst, ProtocolKind::kModified);
  engine.inject_all_exits(0);
  engine.schedule_crash(c3, 1000);
  engine.withdraw_exit(r3, 1040);
  engine.schedule_restart(c3, 1080);
  const auto result = engine.run();
  ASSERT_TRUE(result.converged);
  EXPECT_FALSE(engine.ebgp_live(r3));
  for (NodeId v = 0; v < inst.node_count(); ++v) {
    EXPECT_NE(result.final_best[v], r3) << inst.node_name(v);
    EXPECT_TRUE(engine.rib_in(v, r3).empty()) << inst.node_name(v);
  }
  const auto report = analysis::check_invariants(engine);
  EXPECT_TRUE(report.clean()) << analysis::describe_report(report);
}

// --- message loss / duplication ----------------------------------------------------

TEST(Faults, DuplicationIsIdempotent) {
  const auto inst = topo::fig1a();
  FaultScriptConfig config;
  config.seed = 7;
  config.dup_prob = 0.5;
  const auto script = make_fault_script(inst, config);
  const auto campaign = run_campaign(inst, ProtocolKind::kModified, script);
  ASSERT_TRUE(campaign.reconverged());
  EXPECT_GT(campaign.run.messages_duplicated, 0u);
  expect_fixed_point(inst, campaign.run.final_best);
  EXPECT_TRUE(campaign.invariants.clean())
      << analysis::describe_report(campaign.invariants);
}

TEST(Faults, LossWithHoldTimerRepairHealsTheRibs) {
  // Drops trigger a session reset after loss_detect_delay (the hold-timer
  // model), which flushes and re-syncs both ends: after quiescence every
  // RIB must match what its peers advertise.
  const auto inst = topo::fig1a();
  for (const std::uint64_t seed : {1, 2, 3, 4, 5}) {
    FaultScriptConfig config;
    config.seed = seed;
    config.loss_prob = 0.15;
    config.loss_detect_delay = 25;
    config.repair_downtime = 10;
    const auto script = make_fault_script(inst, config);
    const auto campaign = run_campaign(inst, ProtocolKind::kModified, script);
    ASSERT_TRUE(campaign.reconverged()) << "seed " << seed;
    EXPECT_GT(campaign.run.messages_dropped, 0u) << "seed " << seed;
    expect_fixed_point(inst, campaign.run.final_best);
    EXPECT_TRUE(campaign.invariants.clean())
        << "seed " << seed << ": " << analysis::describe_report(campaign.invariants);
  }
}

TEST(Faults, UnrepairedLossIsCaughtByTheInvariantChecker) {
  // With detection disabled a dropped UPDATE silently desynchronizes
  // sender and receiver forever.  The checker must notice on at least one
  // seed — this is the negative control proving it can fail.
  const auto inst = topo::fig1a();
  bool caught = false;
  std::size_t dropped = 0;
  for (std::uint64_t seed = 1; seed <= 10 && !caught; ++seed) {
    FaultScriptConfig config;
    config.seed = seed;
    config.loss_prob = 0.3;
    config.loss_detect_delay = 0;  // no repair
    const auto script = make_fault_script(inst, config);
    const auto campaign = run_campaign(inst, ProtocolKind::kModified, script);
    dropped += campaign.run.messages_dropped;
    if (campaign.reconverged() && !campaign.invariants.clean()) caught = true;
  }
  EXPECT_GT(dropped, 0u);
  EXPECT_TRUE(caught) << "30% unrepaired loss never desynchronized a RIB in 10 seeds";
}

// --- exit-flap storms --------------------------------------------------------------

TEST(Faults, ExitFlapStormSettlesToTheFixedPoint) {
  const auto inst = topo::fig3();
  FaultScriptConfig config;
  config.seed = 11;
  config.exit_flaps = 8;
  config.window_start = 50;
  config.window_end = 400;
  const auto script = make_fault_script(inst, config);
  const auto campaign = run_campaign(inst, ProtocolKind::kModified, script);
  ASSERT_TRUE(campaign.reconverged());
  // Every withdraw in the storm is paired with a re-inject, so all exits
  // are live again at the end and the full fixed point must hold.
  expect_fixed_point(inst, campaign.run.final_best);
  EXPECT_TRUE(campaign.invariants.clean())
      << analysis::describe_report(campaign.invariants);
}

// --- determinism -------------------------------------------------------------------

TEST(Faults, SameSeedSameTraceHash) {
  // The acceptance scenario: session flaps + message loss + one router
  // crash/restart on the Fig 3 topology, fully deterministic from the seed.
  const auto inst = topo::fig3();
  FaultScriptConfig config;
  config.seed = 42;
  config.session_flaps = 3;
  config.crashes = 1;
  config.loss_prob = 0.05;
  config.window_start = 20;
  config.window_end = 300;
  const auto script = make_fault_script(inst, config);
  const auto first = run_campaign(inst, ProtocolKind::kModified, script);
  const auto second = run_campaign(inst, ProtocolKind::kModified, script);
  ASSERT_TRUE(first.reconverged());
  EXPECT_EQ(first.trace_hash, second.trace_hash);
  EXPECT_EQ(first.run.final_best, second.run.final_best);
  EXPECT_EQ(first.run.deliveries, second.run.deliveries);
  EXPECT_EQ(first.run.messages_dropped, second.run.messages_dropped);

  config.seed = 43;
  const auto other = run_campaign(inst, ProtocolKind::kModified,
                                  make_fault_script(inst, config));
  EXPECT_NE(first.trace_hash, other.trace_hash) << "different seed, identical trace";
}

TEST(Faults, ScriptGenerationIsDeterministic) {
  const auto inst = topo::fig3();
  FaultScriptConfig config;
  config.seed = 99;
  config.session_flaps = 4;
  config.crashes = 2;
  config.exit_flaps = 3;
  const auto a = make_fault_script(inst, config);
  const auto b = make_fault_script(inst, config);
  ASSERT_EQ(a.actions.size(), b.actions.size());
  ASSERT_EQ(a.actions.size(), 2 * (4 + 2 + 3u));
  for (std::size_t i = 0; i < a.actions.size(); ++i) {
    EXPECT_EQ(a.actions[i].time, b.actions[i].time);
    EXPECT_EQ(a.actions[i].kind, b.actions[i].kind);
    EXPECT_EQ(a.actions[i].a, b.actions[i].a);
    EXPECT_EQ(a.actions[i].b, b.actions[i].b);
    EXPECT_EQ(a.actions[i].path, b.actions[i].path);
  }
  // Sorted by time, and faults only start inside the window.
  for (std::size_t i = 1; i < a.actions.size(); ++i) {
    EXPECT_LE(a.actions[i - 1].time, a.actions[i].time);
  }
}

// --- the Section 7 theorem, empirically --------------------------------------------

TEST(Faults, ModifiedReconvergesAfterEveryFiniteFaultBurst) {
  // Campaign matrix over every paper figure and a batch of seeds: mixed
  // session flaps, crashes, exit flaps, loss and duplication.  The modified
  // protocol must reconverge with clean invariants on ALL of them.
  for (const auto& [name, inst] : topo::all_figures()) {
    for (const std::uint64_t seed : {1, 2, 3}) {
      FaultScriptConfig config;
      config.seed = seed;
      config.session_flaps = 2;
      config.crashes = 1;
      config.exit_flaps = 2;
      config.loss_prob = 0.05;
      config.dup_prob = 0.05;
      config.window_start = 10;
      config.window_end = 400;
      const auto script = make_fault_script(inst, config);
      const auto campaign = run_campaign(inst, ProtocolKind::kModified, script);
      ASSERT_TRUE(campaign.reconverged()) << name << " seed " << seed;
      EXPECT_TRUE(campaign.invariants.clean())
          << name << " seed " << seed << ": "
          << analysis::describe_report(campaign.invariants);
    }
  }
}

TEST(Faults, StandardHasANonReconvergingCaseInTheMatrix) {
  // The same campaign shape finds at least one case where standard I-BGP
  // never drains its queue (fig1a has no stable configuration at all, and
  // fig3's delay symmetry sustains the Table-1 oscillation).
  std::size_t failures = 0;
  for (const auto& [name, inst] : topo::all_figures()) {
    for (const std::uint64_t seed : {1, 2, 3}) {
      FaultScriptConfig config;
      config.seed = seed;
      config.session_flaps = 2;
      config.exit_flaps = 2;
      config.window_start = 10;
      config.window_end = 400;
      const auto script = make_fault_script(inst, config);
      CampaignOptions options;
      options.max_deliveries = 60000;
      const auto campaign = run_campaign(inst, ProtocolKind::kStandard, script, options);
      if (!campaign.reconverged()) ++failures;
    }
  }
  EXPECT_GT(failures, 0u);
}

// --- scheduling guards -------------------------------------------------------------

TEST(Faults, ScheduleValidatesTargets) {
  const auto inst = topo::fig1a();
  const NodeId c1 = inst.find_node("c1");
  const NodeId c3 = inst.find_node("c3");
  EventEngine engine(inst, ProtocolKind::kModified);
  // c1 (cluster 0) and c3 (cluster 1) share no session.
  EXPECT_THROW(engine.schedule_session_down(c1, c3, 0), std::invalid_argument);
  EXPECT_THROW(engine.schedule_session_up(c1, c3, 0), std::invalid_argument);
  EXPECT_THROW(engine.schedule_crash(inst.node_count(), 0), std::invalid_argument);
  EXPECT_THROW(engine.schedule_restart(inst.node_count(), 0), std::invalid_argument);
}

TEST(Faults, RedundantFaultsAreNoOps) {
  const auto inst = topo::fig1a();
  const NodeId a = inst.find_node("A");
  const NodeId b = inst.find_node("B");
  EventEngine engine(inst, ProtocolKind::kModified);
  engine.inject_all_exits(0);
  engine.schedule_session_down(a, b, 1000);
  engine.schedule_session_down(a, b, 1001);  // already down
  engine.schedule_session_up(a, b, 1002);
  engine.schedule_session_up(a, b, 1003);  // already up
  engine.schedule_crash(b, 1100);
  engine.schedule_crash(b, 1101);  // already crashed
  engine.schedule_restart(b, 1200);
  engine.schedule_restart(b, 1201);  // already up
  const auto result = engine.run();
  ASSERT_TRUE(result.converged);
  EXPECT_EQ(result.faults_applied, 4u) << "duplicates must not re-apply";
  expect_fixed_point(inst, result.final_best);
  const auto report = analysis::check_invariants(engine);
  EXPECT_TRUE(report.clean()) << analysis::describe_report(report);
}

TEST(Faults, FaultLogIsChronological) {
  const auto inst = topo::fig3();
  FaultScriptConfig config;
  config.seed = 5;
  config.session_flaps = 3;
  config.crashes = 1;
  const auto script = make_fault_script(inst, config);
  engine::EventEngine engine(inst, ProtocolKind::kModified);
  ScriptInjector injector(script);
  engine.set_fault_injector(&injector);
  engine.inject_all_exits(0);
  apply_script(script, engine);
  const auto result = engine.run();
  ASSERT_TRUE(result.converged);
  const auto log = engine.fault_log();
  EXPECT_EQ(result.faults_applied, log.size());
  for (std::size_t i = 1; i < log.size(); ++i) {
    EXPECT_LE(log[i - 1].time, log[i].time);
  }
  for (const auto& fault : log) {
    EXPECT_STRNE(engine::fault_kind_name(fault.kind), "?");
  }
}

}  // namespace
}  // namespace ibgp::fault
