// Observability layer: the metrics registry's deterministic/volatile split,
// ibgp-trace-v1 emission and parsing, decision provenance, and the contract
// the whole subsystem exists to keep — instrumented counters byte-identical
// across --jobs 1 and --jobs N on a mixed churn+flap+GR sweep.

#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bgp/selection.hpp"
#include "engine/event_engine.hpp"
#include "fault/campaign.hpp"
#include "fault/script.hpp"
#include "fault/sweep.hpp"
#include "obs/causal.hpp"
#include "obs/exposition.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "topo/figures.hpp"
#include "util/log.hpp"

namespace ibgp {
namespace {

using obs::MetricClass;
using obs::MetricsRegistry;
using obs::TraceSink;

// --- registry semantics ------------------------------------------------------

TEST(Metrics, CounterBasicsAndLookup) {
  MetricsRegistry reg;
  auto& c = reg.counter("engine.things");
  c.increment();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  EXPECT_EQ(reg.counter_value("engine.things"), 42u);
  // counter_value never registers: the name stays absent.
  EXPECT_EQ(reg.counter_value("engine.absent"), 0u);
  EXPECT_EQ(&reg.counter("engine.things"), &c) << "re-registration returns the same metric";
}

TEST(Metrics, ConflictingReRegistrationThrows) {
  MetricsRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), std::logic_error);
  EXPECT_THROW(reg.histogram("x", {1, 2}), std::logic_error);
  EXPECT_THROW(reg.counter("x", MetricClass::kVolatile), std::logic_error)
      << "same kind, different class";
  reg.histogram("h", {1, 2, 3});
  EXPECT_THROW(reg.histogram("h", {1, 2}), std::logic_error) << "different bounds";
}

TEST(Metrics, HistogramBucketBoundaries) {
  MetricsRegistry reg;
  auto& h = reg.histogram("h", {10, 20});
  // Upper-inclusive "le" semantics: bucket 0 counts <= 10, bucket 1 counts
  // (10, 20], bucket 2 (overflow) everything above.
  h.observe(-5);
  h.observe(10);
  h.observe(11);
  h.observe(20);
  h.observe(21);
  const auto counts = h.counts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.sum(), -5 + 10 + 11 + 20 + 21);
}

TEST(Metrics, HistogramBoundsMustStrictlyIncrease) {
  MetricsRegistry reg;
  EXPECT_THROW(reg.histogram("bad", {10, 10}), std::logic_error);
  EXPECT_THROW(reg.histogram("bad2", {20, 10}), std::logic_error);
  EXPECT_THROW(reg.histogram("empty", {}), std::logic_error);
}

TEST(Metrics, GaugeRecordMax) {
  MetricsRegistry reg;
  auto& g = reg.gauge("depth");
  g.record_max(7);
  g.record_max(3);
  EXPECT_EQ(g.value(), 7);
  g.set(2);
  EXPECT_EQ(g.value(), 2);
}

TEST(Metrics, DeterministicVolatileSplit) {
  MetricsRegistry reg;
  reg.counter("det").add(1);
  reg.counter("vol", MetricClass::kVolatile).add(2);
  reg.gauge("g").set(3);
  const std::string det = util::json::Value(reg.deterministic_json()).dump();
  const std::string vol = util::json::Value(reg.volatile_json()).dump();
  EXPECT_NE(det.find("\"det\""), std::string::npos);
  EXPECT_EQ(det.find("\"vol\""), std::string::npos);
  EXPECT_EQ(det.find("\"g\""), std::string::npos) << "gauges are always volatile";
  EXPECT_NE(vol.find("\"vol\""), std::string::npos);
  EXPECT_NE(vol.find("\"g\""), std::string::npos);
  const std::string doc = util::json::Value(reg.json()).dump();
  EXPECT_NE(doc.find("ibgp-metrics-v1"), std::string::npos);
}

TEST(Metrics, FingerprintCoversDeterministicValuesOnly) {
  MetricsRegistry a, b;
  a.counter("c");
  b.counter("c");
  a.gauge("g").set(5);
  b.gauge("g").set(99);
  EXPECT_EQ(a.fingerprint(), b.fingerprint()) << "volatile values must not fold in";
  a.counter("c").increment();
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(Metrics, ResetZeroesValuesKeepsStructure) {
  MetricsRegistry reg;
  reg.counter("c").add(5);
  reg.histogram("h", {10}).observe(3);
  const auto before = util::json::Value(reg.deterministic_json()).dump();
  reg.reset();
  EXPECT_EQ(reg.counter_value("c"), 0u);
  EXPECT_EQ(reg.histogram("h", {10}).total(), 0u) << "bounds survive reset";
  reg.counter("c").add(5);
  reg.histogram("h", {10}).observe(3);
  EXPECT_EQ(util::json::Value(reg.deterministic_json()).dump(), before)
      << "same recordings after reset reproduce the same snapshot";
}

TEST(Metrics, ConcurrentCounterAddsAreLossless) {
  MetricsRegistry reg;
  auto& c = reg.counter("c");
  constexpr int kThreads = 8, kAdds = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kAdds; ++i) c.increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kAdds);
}

// --- trace sink & reader -----------------------------------------------------

TEST(Trace, WriterRoundTrip) {
  TraceSink sink;
  std::vector<std::string> lines;
  sink.open_writer([&](std::string_view line) { lines.emplace_back(line); });
  ASSERT_TRUE(sink.enabled());

  util::json::Object fields;
  fields.emplace_back("node", 3);
  fields.emplace_back("rule", "igp-cost");
  fields.emplace_back("flip", true);
  sink.emit(17, "decision", std::move(fields));
  sink.close();
  EXPECT_FALSE(sink.enabled());

  ASSERT_EQ(lines.size(), 2u) << "header + one record";
  const auto header = obs::parse_trace_line(lines[0]);
  ASSERT_TRUE(header);
  EXPECT_EQ(header->str("schema"), "ibgp-trace-v2");

  const auto record = obs::parse_trace_line(lines[1]);
  ASSERT_TRUE(record);
  EXPECT_EQ(record->str("ev"), "decision");
  EXPECT_EQ(record->num("seq"), 0);
  EXPECT_EQ(record->num("t"), 17);
  EXPECT_EQ(record->num("node"), 3);
  EXPECT_EQ(record->str("rule"), "igp-cost");
  const auto* flip = record->find("flip");
  ASSERT_NE(flip, nullptr);
  EXPECT_EQ(flip->kind, obs::TraceRecord::Field::Kind::kBool);
  EXPECT_TRUE(flip->bool_value);
}

TEST(Trace, DisabledSinkEmitsNothing) {
  TraceSink sink;
  EXPECT_FALSE(sink.enabled());
  EXPECT_EQ(sink.events_emitted(), 0u);
}

TEST(Trace, ParseRejectsMalformedAndNested) {
  EXPECT_FALSE(obs::parse_trace_line("not json"));
  EXPECT_FALSE(obs::parse_trace_line("{\"unterminated\": "));
  EXPECT_FALSE(obs::parse_trace_line("{\"nested\": {\"a\": 1}}"))
      << "ibgp-trace-v1 records are flat by contract";
  EXPECT_FALSE(obs::parse_trace_line("{\"arr\": [1, 2]}"));
  const auto ok = obs::parse_trace_line("{\"a\": 1, \"b\": -2.5, \"c\": null}");
  ASSERT_TRUE(ok);
  EXPECT_EQ(ok->num("a"), 1);
  const auto* b = ok->find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->kind, obs::TraceRecord::Field::Kind::kDouble);
  EXPECT_DOUBLE_EQ(b->double_value, -2.5);
  const auto* c = ok->find("c");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->kind, obs::TraceRecord::Field::Kind::kNull);
}

TEST(Trace, RingRetainsTailAndCountsDrops) {
  TraceSink sink;
  std::vector<std::string> dumped;
  sink.open_ring(3, [&](std::string_view line) { dumped.emplace_back(line); });
  ASSERT_TRUE(sink.enabled());
  ASSERT_TRUE(sink.ring_mode());
  for (int i = 0; i < 5; ++i) {
    util::json::Object fields;
    fields.emplace_back("i", i);
    sink.emit(static_cast<std::uint64_t>(i), "tick", std::move(fields));
  }
  EXPECT_TRUE(dumped.empty()) << "ring mode writes nothing until dump_ring()";
  EXPECT_EQ(sink.ring_dropped(), 2u);
  sink.dump_ring();
  // header + ring-dump marker + the 3 retained records, oldest first.
  ASSERT_EQ(dumped.size(), 5u);
  const auto marker = obs::parse_trace_line(dumped[1]);
  ASSERT_TRUE(marker);
  EXPECT_EQ(marker->str("ev"), "ring-dump");
  EXPECT_EQ(marker->num("retained"), 3);
  EXPECT_EQ(marker->num("dropped"), 2);
  for (int i = 0; i < 3; ++i) {
    const auto rec = obs::parse_trace_line(dumped[static_cast<std::size_t>(i) + 2]);
    ASSERT_TRUE(rec);
    EXPECT_EQ(rec->num("i"), i + 2) << "oldest retained record first";
  }
}

// --- selection provenance ----------------------------------------------------

struct SelectionFixture {
  netsim::PhysicalGraph graph;
  bgp::ExitTable table;
  std::unique_ptr<netsim::ShortestPaths> igp;

  SelectionFixture() : graph(4) {
    graph.add_link(0, 1, 1);
    graph.add_link(1, 2, 1);
    graph.add_link(2, 3, 1);
  }

  PathId add(NodeId exit_point, AsId as, Med med, LocalPref lp = 100,
             std::uint32_t len = 3) {
    bgp::ExitPath path;
    path.exit_point = exit_point;
    path.next_as = as;
    path.med = med;
    path.local_pref = lp;
    path.as_path_length = len;
    path.ebgp_peer = static_cast<BgpId>(500 + table.size());
    return table.add(std::move(path));
  }

  std::optional<bgp::RouteView> best(NodeId at, std::vector<bgp::Candidate> candidates,
                                     bgp::SelectionProvenance* provenance) {
    if (!igp) igp = std::make_unique<netsim::ShortestPaths>(graph);
    return bgp::choose_best(table, *igp, at, candidates, {}, provenance);
  }
};

TEST(Provenance, SoleCandidateIsItsOwnRule) {
  SelectionFixture f;
  const auto only = f.add(1, 1, 0);
  bgp::SelectionProvenance prov;
  const auto best = f.best(0, {{only, 10}}, &prov);
  ASSERT_TRUE(best);
  EXPECT_TRUE(prov.selected);
  EXPECT_EQ(prov.decisive, bgp::SelectionRule::kSoleCandidate);
  EXPECT_EQ(prov.candidates, 1u);
  EXPECT_EQ(prov.usable, 1u);
  EXPECT_EQ(prov.eliminated_total(), 0u);
}

TEST(Provenance, DecisiveRuleAndEliminationCounts) {
  SelectionFixture f;
  const auto lo = f.add(1, 1, 0, 90);
  const auto hi = f.add(3, 2, 0, 200);
  bgp::SelectionProvenance prov;
  const auto best = f.best(0, {{lo, 10}, {hi, 11}}, &prov);
  ASSERT_TRUE(best);
  EXPECT_EQ(best->path, hi);
  EXPECT_EQ(prov.decisive, bgp::SelectionRule::kLocalPref);
  EXPECT_EQ(prov.eliminated[bgp::rule_index(bgp::SelectionRule::kLocalPref)], 1u);
  EXPECT_EQ(prov.usable, 1u + prov.eliminated_total()) << "the provenance invariant";
}

TEST(Provenance, IgpCostDecidesEqualAttributeRoutes) {
  SelectionFixture f;
  const auto near = f.add(1, 1, 0);
  const auto far = f.add(3, 2, 0);
  bgp::SelectionProvenance prov;
  const auto best = f.best(0, {{near, 10}, {far, 11}}, &prov);
  ASSERT_TRUE(best);
  EXPECT_EQ(best->path, near);
  EXPECT_EQ(prov.decisive, bgp::SelectionRule::kIgpCost);
}

TEST(Provenance, BgpIdBreaksExactTies) {
  SelectionFixture f;
  // Same exit point seen via two peers: identical attributes and metric,
  // only learnedFrom differs.
  const auto p = f.add(2, 1, 0);
  bgp::SelectionProvenance prov;
  const auto best = f.best(0, {{p, 20}, {p, 10}}, &prov);
  ASSERT_TRUE(best);
  EXPECT_EQ(best->learned_from, 10u);
  EXPECT_EQ(prov.decisive, bgp::SelectionRule::kBgpIdTieBreak);
}

TEST(Provenance, UnreachableAndEmptySetsAreAccounted) {
  SelectionFixture f;
  const auto p = f.add(3, 1, 0);
  f.graph = netsim::PhysicalGraph(4);  // no links: node 3 unreachable from 0
  bgp::SelectionProvenance prov;
  const auto best = f.best(0, {{p, 10}}, &prov);
  EXPECT_FALSE(best);
  EXPECT_FALSE(prov.selected);
  EXPECT_EQ(prov.candidates, 1u);
  EXPECT_EQ(prov.unreachable, 1u);
  EXPECT_EQ(prov.usable, 0u);
}

// --- engine-level provenance -------------------------------------------------

TEST(EngineProvenance, ByRuleAndByNodeSumToTotal) {
  const auto inst = topo::fig3();
  engine::EventEngine engine(inst, core::ProtocolKind::kStandard);
  engine.inject_all_exits(0);
  const auto result = engine.run(50000);

  EXPECT_GT(result.decisions_total, 0u);
  std::uint64_t by_rule = 0;
  for (const auto count : result.decisions_by_rule) by_rule += count;
  EXPECT_EQ(by_rule, result.decisions_total);

  ASSERT_EQ(result.decisions_by_node.size(), inst.node_count());
  std::array<std::uint64_t, bgp::kSelectionRuleCount> by_node_total{};
  std::uint64_t all_nodes = 0;
  for (const auto& node : result.decisions_by_node) {
    for (std::size_t r = 0; r < node.size(); ++r) {
      by_node_total[r] += node[r];
      all_nodes += node[r];
    }
  }
  EXPECT_EQ(all_nodes, result.decisions_total);
  EXPECT_EQ(by_node_total, result.decisions_by_rule);
}

TEST(EngineProvenance, MetricsMatchResultAndFlushOnceAcrossRuns) {
  const auto inst = topo::fig3();
  MetricsRegistry reg;
  fault::register_campaign_metrics(reg);

  fault::FaultScriptConfig config;
  config.seed = 3;
  config.session_flaps = 2;
  const auto script = fault::make_fault_script(inst, config);
  fault::CampaignOptions options;
  options.metrics = &reg;
  options.max_deliveries = 100000;

  const auto first = fault::run_campaign(inst, core::ProtocolKind::kModified, script, options);
  EXPECT_EQ(reg.counter_value("engine.decisions"), first.run.decisions_total);
  EXPECT_EQ(reg.counter_value("campaign.runs"), 1u);

  const auto second = fault::run_campaign(inst, core::ProtocolKind::kModified, script, options);
  EXPECT_EQ(second.trace_hash, first.trace_hash) << "same seed, same campaign";
  EXPECT_EQ(reg.counter_value("engine.decisions"),
            first.run.decisions_total + second.run.decisions_total)
      << "delta flushing: cumulative engine counters must not double-count";
  EXPECT_EQ(reg.counter_value("campaign.runs"), 2u);

  std::uint64_t decided = 0;
  for (std::size_t r = 0; r < bgp::kSelectionRuleCount; ++r) {
    const std::string name(bgp::selection_rule_name(static_cast<bgp::SelectionRule>(r)));
    decided += reg.counter_value("engine.decided." + name);
  }
  EXPECT_EQ(decided, reg.counter_value("engine.decisions"))
      << "provenance counters sum to total decisions";
}

// --- the headline contract: serial vs parallel byte-identity -----------------

std::vector<fault::SweepCell> mixed_sweep_cells(const core::Instance& inst,
                                                MetricsRegistry* registry) {
  // Mixed churn + flap + GR grid: every fault family that feeds counters.
  std::vector<fault::SweepCell> cells;
  for (const auto protocol : {core::ProtocolKind::kStandard, core::ProtocolKind::kWalton,
                              core::ProtocolKind::kModified}) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      fault::FaultScriptConfig config;
      config.seed = seed;
      config.session_flaps = 2;
      config.graceful_restarts = 1;
      config.stale_timer = 200;
      config.link_cost_changes = 2;
      config.loss_prob = 0.05;
      fault::SweepCell cell;
      cell.instance = &inst;
      cell.protocol = protocol;
      cell.script = fault::make_fault_script(inst, config);
      cell.options.max_deliveries = 60000;
      cell.options.metrics = registry;
      cell.group = "mixed";
      cell.seed = seed;
      cells.push_back(std::move(cell));
    }
  }
  return cells;
}

TEST(Determinism, MetricSnapshotsByteIdenticalAcrossJobs) {
  const auto inst = topo::fig3();

  MetricsRegistry serial_reg;
  fault::register_sweep_metrics(serial_reg);
  const auto serial_cells = mixed_sweep_cells(inst, &serial_reg);
  const auto serial = fault::run_sweep(serial_cells, 1);

  MetricsRegistry parallel_reg;
  fault::register_sweep_metrics(parallel_reg);
  const auto parallel_cells = mixed_sweep_cells(inst, &parallel_reg);
  const auto parallel = fault::run_sweep(parallel_cells, 4);

  EXPECT_EQ(serial.fingerprint, parallel.fingerprint);
  EXPECT_EQ(serial_reg.fingerprint(), parallel_reg.fingerprint());
  EXPECT_EQ(util::json::Value(serial_reg.deterministic_json()).dump(),
            util::json::Value(parallel_reg.deterministic_json()).dump())
      << "deterministic snapshot must be byte-identical across --jobs";
}

// --- flight recorder: ring dump on invariant violation -----------------------

TEST(FlightRecorder, RingDumpsOnInvariantViolation) {
  // The known unclean recipe (see test_faults UnrepairedLoss...): 30%
  // unrepaired loss desynchronizes a RIB on at least one of these seeds.
  const auto inst = topo::fig1a();
  TraceSink sink;
  std::vector<std::string> dumped;
  sink.open_ring(64, [&](std::string_view line) { dumped.emplace_back(line); });

  bool violated = false;
  for (std::uint64_t seed = 1; seed <= 10 && !violated; ++seed) {
    fault::FaultScriptConfig config;
    config.seed = seed;
    config.loss_prob = 0.3;
    config.loss_detect_delay = 0;  // no repair
    const auto script = fault::make_fault_script(inst, config);
    fault::CampaignOptions options;
    options.trace = &sink;
    const auto campaign =
        fault::run_campaign(inst, core::ProtocolKind::kModified, script, options);
    if (campaign.reconverged() && !campaign.invariants.clean()) violated = true;
  }
  ASSERT_TRUE(violated) << "recipe no longer triggers a violation";
  ASSERT_GE(dumped.size(), 3u) << "header + ring-dump marker + retained tail";
  const auto header = obs::parse_trace_line(dumped[0]);
  ASSERT_TRUE(header);
  EXPECT_EQ(header->str("schema"), "ibgp-trace-v2");
  const auto marker = obs::parse_trace_line(dumped[1]);
  ASSERT_TRUE(marker);
  EXPECT_EQ(marker->str("ev"), "ring-dump");
  EXPECT_LE(marker->num("retained"), 64);
  for (std::size_t i = 2; i < dumped.size(); ++i) {
    EXPECT_TRUE(obs::parse_trace_line(dumped[i])) << "ring line " << i << " unparseable";
  }
}

// --- SPF cache counters ------------------------------------------------------

TEST(SpfCacheMetrics, BaseEpochNeverCountsAsAMiss) {
  const auto inst = topo::fig1a();
  // Instance construction primes the cache with the base epoch: exactly one
  // miss (and its insert) happened before anyone could observe the cache.
  const auto at_start = inst.spf_cache().stats();
  EXPECT_EQ(at_start.misses, 1u);
  EXPECT_EQ(at_start.inserts, at_start.misses);

  MetricsRegistry reg;
  inst.spf_cache().attach_metrics(&reg);

  std::vector<Cost> base_costs;
  for (const auto& link : inst.physical().links()) base_costs.push_back(link.cost);

  const auto handle = inst.igp_epoch(base_costs);
  EXPECT_EQ(handle.get(), inst.igp_handle().get())
      << "base costs must resolve to the identical primed epoch";
  const auto after = inst.spf_cache().stats();
  EXPECT_EQ(after.misses, at_start.misses) << "base-epoch lookup must hit";
  EXPECT_EQ(after.hits, at_start.hits + 1);
  EXPECT_EQ(reg.counter_value("spf.hits"), 1u) << "mirror counts from attach time";
  EXPECT_EQ(reg.counter_value("spf.misses"), 0u);

  // A genuinely new cost vector is a miss + insert, mirrored too.
  std::vector<Cost> churned = base_costs;
  churned.front() += 7;
  (void)inst.igp_epoch(churned);
  EXPECT_EQ(inst.spf_cache().stats().misses, at_start.misses + 1);
  EXPECT_EQ(reg.counter_value("spf.misses"), 1u);
  EXPECT_EQ(reg.counter_value("spf.inserts"), 1u);
  inst.spf_cache().attach_metrics(nullptr);
}

TEST(SpfCacheMetrics, BoundedLruEvictsColdEpochsButNeverTheBase) {
  const auto inst = topo::fig1a();
  auto& cache = inst.spf_cache();
  MetricsRegistry reg;
  cache.attach_metrics(&reg);
  cache.set_capacity(3);  // base + 2 churn epochs

  std::vector<Cost> base_costs;
  for (const auto& link : inst.physical().links()) base_costs.push_back(link.cost);
  const auto base_epoch = inst.igp_handle();

  auto churned = [&](Cost delta) {
    auto costs = base_costs;
    costs.front() += delta;
    return costs;
  };

  const auto e1 = cache.get(churned(1));
  const auto e2 = cache.get(churned(2));
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.stats().evictions, 0u);

  // Touch e1 so e2 is the LRU victim when a fourth epoch arrives.
  EXPECT_EQ(cache.get(churned(1)).get(), e1.get());
  const auto e3 = cache.get(churned(3));
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(reg.counter_value("spf.evictions"), 1u);

  // e1 survived (still the identical object); e2 was evicted, so asking
  // again recomputes — a fresh miss, not a corrupted epoch.
  EXPECT_EQ(cache.get(churned(1)).get(), e1.get());
  const auto before = cache.stats().misses;
  const auto e2_again = cache.get(churned(2));
  EXPECT_EQ(cache.stats().misses, before + 1);
  EXPECT_EQ(e2_again->cost(0, 1), e2->cost(0, 1));

  // The base epoch is pinned: however much churn flows through, base costs
  // still resolve to the primed object.
  for (Cost delta = 10; delta < 30; ++delta) (void)cache.get(churned(delta));
  EXPECT_EQ(cache.get(base_costs).get(), base_epoch.get());
  EXPECT_EQ(cache.size(), 3u);

  // Shrinking the cap evicts down to it immediately; the base survives.
  cache.set_capacity(1);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.get(base_costs).get(), base_epoch.get());
  cache.set_capacity(0);
  cache.attach_metrics(nullptr);
}

// --- profiler spans ----------------------------------------------------------

TEST(Span, NestedSpansAggregatePerHistogram) {
  MetricsRegistry reg;
  auto& outer = obs::span_histogram(reg, "outer_ns");
  auto& inner = obs::span_histogram(reg, "inner_ns");
  {
    const obs::Span outer_span(&outer);
    { const obs::Span inner_span(&inner); }
    { const obs::Span disabled(nullptr); }  // null sink: no clock, no sample
  }
  EXPECT_EQ(outer.total(), 1u);
  EXPECT_EQ(inner.total(), 1u);
  // The outer extent contains the inner span, so per-histogram aggregation
  // must order their sums — that is the documented nesting semantics.
  EXPECT_GE(outer.sum(), inner.sum());
  EXPECT_GE(inner.sum(), 0);
}

TEST(Span, SpanHistogramsAreVolatile) {
  MetricsRegistry reg;
  const auto before = reg.fingerprint();
  obs::span_histogram(reg, "engine.span.delivery_ns").observe(12345);
  EXPECT_EQ(reg.fingerprint(), before) << "wall time must never enter a fingerprint";
  EXPECT_EQ(obs::span_histogram(reg, "engine.span.delivery_ns").bounds(),
            obs::span_bounds_ns());
}

TEST(Span, QuantileInterpolatesWithinBuckets) {
  const std::vector<std::int64_t> bounds{100, 200, 400};
  // 2 samples in (0,100], 2 in (100,200]: p50 rank=2 lands exactly on the
  // end of bucket 0, p75 rank=3 is halfway through bucket 1.
  const std::vector<std::uint64_t> counts{2, 2, 0, 0};
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(bounds, counts, 0.50), 100.0);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(bounds, counts, 0.75), 150.0);
  // Overflow-bucket samples report the last finite bound.
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(bounds, {0, 0, 0, 5}, 0.99), 400.0);
  // Empty histogram: 0, not NaN.
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(bounds, {0, 0, 0, 0}, 0.5), 0.0);
}

TEST(Span, SummaryJsonCarriesCountSumAndQuantiles) {
  MetricsRegistry reg;
  auto& h = obs::span_histogram(reg, "s_ns");
  h.observe(150);
  h.observe(250);
  const std::string doc = obs::span_summary_json(h).dump();
  for (const char* key : {"\"count\"", "\"sum_ns\"", "\"p50_ns\"", "\"p95_ns\"",
                          "\"p99_ns\""}) {
    EXPECT_NE(doc.find(key), std::string::npos) << key;
  }
}

TEST(Span, ProfileRunKeepsDeterministicSnapshotIdentical) {
  // The zero-cost-when-off contract from the other side: profiling ON must
  // only add volatile histograms — the deterministic snapshot (and hence
  // the fingerprint CI diffs) stays byte-identical.
  const auto inst = topo::fig3();
  fault::FaultScriptConfig config;
  config.seed = 5;
  config.session_flaps = 2;
  const auto script = fault::make_fault_script(inst, config);

  MetricsRegistry plain_reg, profiled_reg;
  fault::register_campaign_metrics(plain_reg);
  fault::register_campaign_metrics(profiled_reg);

  fault::CampaignOptions options;
  options.max_deliveries = 60000;
  options.metrics = &plain_reg;
  (void)fault::run_campaign(inst, core::ProtocolKind::kModified, script, options);
  options.metrics = &profiled_reg;
  options.profile = true;
  (void)fault::run_campaign(inst, core::ProtocolKind::kModified, script, options);

  EXPECT_EQ(util::json::Value(plain_reg.deterministic_json()).dump(),
            util::json::Value(profiled_reg.deterministic_json()).dump());
  EXPECT_EQ(plain_reg.fingerprint(), profiled_reg.fingerprint());
  EXPECT_EQ(obs::span_histogram(plain_reg, "engine.span.delivery_ns").total(), 0u)
      << "no --profile: spans must never fire";
  EXPECT_GT(obs::span_histogram(profiled_reg, "engine.span.delivery_ns").total(), 0u);
  EXPECT_GT(obs::span_histogram(profiled_reg, "engine.span.decision_ns").total(), 0u);
  EXPECT_GT(obs::span_histogram(profiled_reg, "engine.span.transfer_ns").total(), 0u);
}

TEST(Span, SpfRecomputeTimedWheneverMetricsAttached) {
  const auto inst = topo::fig1a();
  MetricsRegistry reg;
  inst.spf_cache().attach_metrics(&reg);
  std::vector<Cost> costs;
  for (const auto& link : inst.physical().links()) costs.push_back(link.cost);
  costs.front() += 3;  // new cost vector: a miss, hence a timed recompute
  (void)inst.igp_epoch(costs);
  EXPECT_EQ(obs::span_histogram(reg, "spf.recompute_ns").total(), 1u);
  (void)inst.igp_epoch(costs);  // hit: no recompute, no sample
  EXPECT_EQ(obs::span_histogram(reg, "spf.recompute_ns").total(), 1u);
  inst.spf_cache().attach_metrics(nullptr);
}

// --- Prometheus exposition ---------------------------------------------------

// In-test exposition checker: every line is `# TYPE <name> <kind>` or
// `<name>[{label="v"}] <number>`; histogram buckets are cumulative and the
// +Inf bucket equals _count.
void check_exposition(const std::string& text) {
  std::size_t value_lines = 0;
  std::istringstream in(text);
  std::string line;
  std::uint64_t last_bucket = 0;
  std::int64_t inf_value = -1;
  std::string bucket_base;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty()) << "no blank lines in the exposition";
    if (line.rfind("# TYPE ", 0) == 0) {
      const auto rest = line.substr(7);
      const auto space = rest.find(' ');
      ASSERT_NE(space, std::string::npos) << line;
      const std::string kind = rest.substr(space + 1);
      EXPECT_TRUE(kind == "counter" || kind == "gauge" || kind == "histogram") << line;
      continue;
    }
    const auto space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    std::string name = line.substr(0, space);
    const std::string value = line.substr(space + 1);
    EXPECT_FALSE(value.empty()) << line;
    ++value_lines;

    const auto brace = name.find('{');
    std::string labels;
    if (brace != std::string::npos) {
      ASSERT_EQ(name.back(), '}') << line;
      labels = name.substr(brace + 1, name.size() - brace - 2);
      name = name.substr(0, brace);
    }
    for (const char c : name) {
      EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':')
          << "invalid exposition name char in: " << line;
    }
    if (name.size() > 7 && name.substr(name.size() - 7) == "_bucket") {
      const std::uint64_t v = std::stoull(value);
      if (name != bucket_base) {  // first bucket of a new histogram
        bucket_base = name;
        last_bucket = 0;
        inf_value = -1;
      }
      EXPECT_GE(v, last_bucket) << "buckets must be cumulative: " << line;
      last_bucket = v;
      if (labels == "le=\"+Inf\"") inf_value = static_cast<std::int64_t>(v);
    } else if (name.size() > 6 && name.substr(name.size() - 6) == "_count") {
      if (inf_value >= 0) {
        EXPECT_EQ(std::stoll(value), inf_value)
            << "+Inf bucket must equal _count: " << line;
      }
    }
  }
  EXPECT_GT(value_lines, 0u);
}

TEST(Exposition, NameManglingAndLabelEscaping) {
  EXPECT_EQ(obs::exposition_name("engine.span.delivery_ns"), "engine_span_delivery_ns");
  EXPECT_EQ(obs::exposition_name("9lives"), "_lives") << "leading digit is invalid";
  EXPECT_EQ(obs::exposition_name("ok_name:v2"), "ok_name:v2");
  EXPECT_EQ(obs::exposition_name(""), "_");
  EXPECT_EQ(obs::exposition_escape_label("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
}

TEST(Exposition, RendersCounterGaugeHistogramThroughChecker) {
  MetricsRegistry reg;
  reg.counter("daemon.records").add(42);
  reg.gauge("daemon.queue_depth").set(7);
  auto& h = reg.histogram("daemon.latency_ns", {10, 20}, MetricClass::kVolatile);
  h.observe(5);
  h.observe(10);  // upper-inclusive: still bucket le="10"
  h.observe(15);
  h.observe(20);
  h.observe(99);  // overflow: only visible in +Inf/_count

  const std::string text = obs::render_exposition(reg.snapshot());
  EXPECT_NE(text.find("# TYPE daemon_records_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("daemon_records_total 42\n"), std::string::npos);
  EXPECT_NE(text.find("daemon_queue_depth 7\n"), std::string::npos);
  EXPECT_NE(text.find("daemon_latency_ns_bucket{le=\"10\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("daemon_latency_ns_bucket{le=\"20\"} 4\n"), std::string::npos)
      << "buckets are cumulative";
  EXPECT_NE(text.find("daemon_latency_ns_bucket{le=\"+Inf\"} 5\n"), std::string::npos);
  EXPECT_NE(text.find("daemon_latency_ns_sum 149\n"), std::string::npos);
  EXPECT_NE(text.find("daemon_latency_ns_count 5\n"), std::string::npos);
  check_exposition(text);
}

TEST(Exposition, SnapshotPreservesRegistrationOrderAndClasses) {
  MetricsRegistry reg;
  reg.counter("b.second");
  reg.counter("a.first");  // registration order, not name order
  reg.gauge("g");
  const auto samples = reg.snapshot();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].name, "b.second");
  EXPECT_EQ(samples[1].name, "a.first");
  EXPECT_EQ(samples[2].kind, obs::MetricSample::Kind::kGauge);
  EXPECT_EQ(samples[0].metric_class, MetricClass::kDeterministic);
}

// --- trace v2 forward compatibility ------------------------------------------

TEST(TraceV2, ReaderToleratesUnknownScalarFieldsAndEventNames) {
  // A v3 writer may add scalar fields and whole record types; a v2 reader
  // must read around both (exactly how v1 readers survive v2's lid/pid).
  const auto with_extras = obs::parse_trace_line(
      "{\"ev\": \"update\", \"seq\": 9, \"t\": 4, \"from\": 1, \"to\": 2, "
      "\"path\": 0, \"announce\": true, \"lid\": 7, \"pid\": 3, "
      "\"v3_hint\": 1.5, \"v3_tag\": \"x\"}");
  ASSERT_TRUE(with_extras);
  EXPECT_EQ(with_extras->num("from"), 1);
  EXPECT_EQ(with_extras->num("lid"), 7);
  EXPECT_DOUBLE_EQ(with_extras->find("v3_hint")->double_value, 1.5);

  const auto unknown_ev = obs::parse_trace_line(
      "{\"ev\": \"quantum-flush\", \"seq\": 1, \"t\": 0, \"lid\": 5}");
  ASSERT_TRUE(unknown_ev) << "unknown ev names parse; consumers skip them";

  // The structured consumer honors the skip contract: an unknown ev adds no
  // update, no decision, no flip — and no error.
  obs::CausalGraph graph;
  graph.add(*unknown_ev);
  EXPECT_EQ(graph.update_count(), 0u);
  EXPECT_TRUE(graph.oscillating_nodes().empty());

  // Nesting stays out of the format in v2 exactly as in v1.
  EXPECT_FALSE(obs::parse_trace_line("{\"ev\": \"update\", \"meta\": {\"a\": 1}}"));
}

// --- causality: lid/pid DAG over a real churn run ---------------------------

std::vector<std::string> fig3_churn_trace(core::ProtocolKind protocol,
                                          std::size_t budget = 4000) {
  const auto inst = topo::fig3();
  engine::EventEngine engine(inst, protocol);
  TraceSink sink;
  std::vector<std::string> lines;
  sink.open_writer([&](std::string_view line) { lines.emplace_back(line); });
  engine.set_trace(&sink);
  engine.inject_all_exits(0);
  engine.withdraw_exit(0, 150);
  engine.inject_exit(0, 400);
  engine.withdraw_exit(1, 300);
  (void)engine.run(budget);
  sink.close();
  return lines;
}

TEST(Causality, EveryDeliveredUpdateHasALiveParentAndPidPrecedesLid) {
  const auto lines = fig3_churn_trace(core::ProtocolKind::kStandard);
  std::set<std::int64_t> seen_lids;
  std::size_t updates = 0, updates_with_pid = 0, roots = 0, flushes = 0;
  for (const auto& line : lines) {
    const auto record = obs::parse_trace_line(line);
    ASSERT_TRUE(record) << line;
    const auto* lid = record->find("lid");
    const auto* pid = record->find("pid");
    if (pid != nullptr) {
      ASSERT_NE(lid, nullptr) << "pid without lid: " << line;
      EXPECT_LT(record->num("pid"), record->num("lid"))
          << "parent must precede child (acyclic by construction): " << line;
      EXPECT_TRUE(seen_lids.count(record->num("pid")))
          << "pid must reference a lid already delivered (live parent): " << line;
    }
    if (lid != nullptr) seen_lids.insert(record->num("lid"));
    const std::string ev(record->str("ev"));
    if (ev == "update") {
      ++updates;
      if (pid != nullptr) ++updates_with_pid;
    } else if (ev == "ebgp-announce" || ev == "ebgp-withdraw") {
      ++roots;
      EXPECT_NE(lid, nullptr) << "injection roots carry a lid: " << line;
      EXPECT_EQ(pid, nullptr) << "injection roots have no causal parent: " << line;
    } else if (ev == "mrai-flush") {
      ++flushes;
      EXPECT_NE(pid, nullptr) << "a flush relays its scheduling delivery: " << line;
    }
  }
  EXPECT_GT(updates, 100u);
  EXPECT_EQ(updates, updates_with_pid)
      << "every delivered update was caused by some processed event";
  EXPECT_GE(roots, 4u) << "the churn script injects at least 4 roots";
  (void)flushes;  // no MRAI configured in this run; presence tested elsewhere
}

TEST(Causality, MraiFlushRelaysResolveToLiveParents) {
  const auto inst = topo::fig3();
  engine::EventEngine engine(inst, core::ProtocolKind::kModified);
  TraceSink sink;
  std::vector<std::string> lines;
  sink.open_writer([&](std::string_view line) { lines.emplace_back(line); });
  engine.set_trace(&sink);
  engine.set_mrai(30);
  engine.inject_all_exits(0);
  engine.withdraw_exit(0, 150);
  engine.inject_exit(0, 400);
  (void)engine.run(60000);
  sink.close();

  std::set<std::int64_t> seen_lids;
  std::size_t flushes = 0;
  for (const auto& line : lines) {
    const auto record = obs::parse_trace_line(line);
    ASSERT_TRUE(record);
    if (record->str("ev") == "mrai-flush") {
      ++flushes;
      EXPECT_TRUE(seen_lids.count(record->num("pid")))
          << "flush parent must be a previously delivered event: " << line;
    }
    if (record->find("lid") != nullptr) seen_lids.insert(record->num("lid"));
  }
  EXPECT_GT(flushes, 0u) << "MRAI=30 on churn must defer at least one flush";
}

TEST(Causality, BlameNamesTheFig3SustainingCycles) {
  // Vanilla I-BGP on Figure 3 oscillates forever: B orbits r3<->r4 and C
  // orbits r5<->r6 (the paper's Section 3 example).  The blame chain must
  // name the causal cycle that sustains each orbit — the reflected
  // advertisements bouncing over the B<->C mesh session — with the exact
  // session, payload, and decisive rule per hop.
  const auto inst = topo::fig3();
  engine::EventEngine engine(inst, core::ProtocolKind::kStandard);
  TraceSink sink;
  obs::CausalGraph graph;
  sink.open_writer([&](std::string_view line) { graph.add_line(line); });
  engine.set_trace(&sink);
  engine.inject_all_exits(0);
  (void)engine.run(4000);
  sink.close();

  const auto oscillating = graph.oscillating_nodes();
  ASSERT_EQ(oscillating.size(), 2u) << "exactly the two orbiting reflectors";
  EXPECT_EQ(graph.node_name(oscillating[0]), "B");
  EXPECT_EQ(graph.node_name(oscillating[1]), "C");

  const auto blame_b = graph.blame(oscillating[0]);
  ASSERT_TRUE(blame_b);
  EXPECT_EQ(blame_b->period, 2u);
  ASSERT_EQ(blame_b->cycle.size(), 2u);
  EXPECT_EQ(graph.format_hop(blame_b->cycle[0]), "B -> C withdraw r3 [rule igp-cost]");
  EXPECT_EQ(graph.format_hop(blame_b->cycle[1]), "C -> B withdraw r5 [rule igp-cost]");

  const auto blame_c = graph.blame(oscillating[1]);
  ASSERT_TRUE(blame_c);
  EXPECT_EQ(blame_c->period, 2u);
  ASSERT_EQ(blame_c->cycle.size(), 2u);
  EXPECT_EQ(graph.format_hop(blame_c->cycle[0]),
            "C -> B announce r5 [rule ebgp-over-ibgp]");
  EXPECT_EQ(graph.format_hop(blame_c->cycle[1]),
            "B -> C announce r3 [rule ebgp-over-ibgp]");

  // Every hop in a blame cycle is a real recorded delivery.
  for (const auto& hop : blame_b->cycle) EXPECT_TRUE(graph.knows_lid(hop.lid));
}

TEST(Causality, ConvergedRunHasNoOscillatingNodes) {
  obs::CausalGraph graph;
  const auto inst = topo::fig3();
  engine::EventEngine engine(inst, core::ProtocolKind::kModified);
  TraceSink sink;
  sink.open_writer([&](std::string_view line) { graph.add_line(line); });
  engine.set_trace(&sink);
  engine.inject_all_exits(0);
  (void)engine.run(60000);
  sink.close();
  EXPECT_TRUE(graph.oscillating_nodes(8).empty())
      << "the modified protocol converges on fig3 — no sustained orbit";
  EXPECT_FALSE(graph.blame(99).has_value()) << "unknown node: no chain";
}

// --- log level env & single write path ---------------------------------------

TEST(Log, EnvLevelParsingIsCaseInsensitive) {
  const auto saved = util::Logger::instance().level();
  ::setenv("IBGP_LOG_LEVEL", "info", 1);
  EXPECT_EQ(util::init_log_level_from_env(), util::LogLevel::kInfo);
  ::setenv("IBGP_LOG_LEVEL", "DEBUG", 1);
  EXPECT_EQ(util::init_log_level_from_env(), util::LogLevel::kDebug);
  ::setenv("IBGP_LOG_LEVEL", "Warn", 1);
  EXPECT_EQ(util::init_log_level_from_env(), util::LogLevel::kWarn);
  ::unsetenv("IBGP_LOG_LEVEL");
  EXPECT_EQ(util::init_log_level_from_env(), util::LogLevel::kWarn)
      << "unset leaves the level untouched";
  util::Logger::instance().set_level(saved);
}

TEST(Log, LineSinkIsTheSingleWritePath) {
  const auto saved = util::Logger::instance().level();
  std::vector<std::string> lines;
  util::Logger::instance().set_line_sink(
      [&](std::string_view line) { lines.emplace_back(line); });
  util::Logger::instance().set_level(util::LogLevel::kInfo);
  IBGP_INFO() << "hello " << 42;
  IBGP_DEBUG() << "suppressed";
  util::Logger::instance().set_line_sink(nullptr);
  util::Logger::instance().set_level(saved);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "[INFO] hello 42");
}

}  // namespace
}  // namespace ibgp
