// Confederation-substrate tests (the RFC 3345 Section 2.2 side of the
// problem statement, and the empirical extension of the paper's fix to it).

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "confed/engine.hpp"
#include "util/rng.hpp"

namespace ibgp::confed {
namespace {

// --- instance validation -----------------------------------------------------

TEST(ConfedInstance, BuildsPeersFromMeshAndBorders) {
  const auto inst = rfc3345_confederation();
  ASSERT_EQ(inst.node_count(), 5u);
  EXPECT_EQ(inst.sub_as_count(), 2u);
  const NodeId a = inst.find_node("A");
  const NodeId b = inst.find_node("B");
  const NodeId c1 = inst.find_node("c1");
  const NodeId c3 = inst.find_node("c3");
  // Sub-AS 0 mesh: A, c1, c2 all peered; border A-B; no c1-B session.
  EXPECT_EQ(inst.peers(a).size(), 3u);  // c1, c2, B
  EXPECT_TRUE(inst.is_border_session(a, b));
  EXPECT_FALSE(inst.is_border_session(a, c1));
  EXPECT_TRUE(inst.same_sub_as(b, c3));
  EXPECT_FALSE(inst.same_sub_as(a, b));
}

TEST(ConfedInstance, RejectsIntraSubAsBorder) {
  netsim::PhysicalGraph physical(2);
  physical.add_link(0, 1, 1);
  bgp::ExitTable exits;
  bgp::ExitPath p;
  p.exit_point = 0;
  exits.add(p);
  EXPECT_THROW(ConfedInstance("bad", std::move(physical), {0, 0}, {{0, 1}},
                              std::move(exits)),
               std::invalid_argument);
}

// --- the RFC 3345 Section 2.2 oscillation ------------------------------------

TEST(Confed, StandardOscillatesPersistently) {
  const auto inst = rfc3345_confederation();
  ConfedEngine engine(inst, ConfedProtocol::kStandard);
  engine.inject_all_exits();
  const auto result = engine.run(/*max_deliveries=*/30000);
  EXPECT_FALSE(result.converged) << "the confederation analogue of Fig 1(a) must churn";
  EXPECT_GT(result.best_flips, 100u);
  // The churn is concentrated at the border routers, like the reflectors in
  // the RR variant.
  const NodeId a = inst.find_node("A");
  const NodeId b = inst.find_node("B");
  EXPECT_GT(engine.flips_by_node()[a], 10u);
  EXPECT_GT(engine.flips_by_node()[b], 10u);
}

TEST(Confed, OscillationIsMedInduced) {
  const auto base = rfc3345_confederation();
  bgp::SelectionPolicy no_med = base.policy();
  no_med.med = bgp::MedMode::kIgnore;
  // Rebuild with MEDs ignored (ConfedInstance has no with_policy; rebuild).
  netsim::PhysicalGraph physical(5);
  physical.add_link(0, 1, 5);
  physical.add_link(0, 2, 4);
  physical.add_link(0, 4, 13);
  physical.add_link(0, 3, 6);
  physical.add_link(3, 4, 12);
  bgp::ExitTable exits;
  for (const auto& path : base.exits().all()) exits.add(path);
  ConfedInstance inst("no-med", std::move(physical), {0, 0, 0, 1, 1}, {{0, 3}},
                      std::move(exits), no_med);
  ConfedEngine engine(inst, ConfedProtocol::kStandard);
  engine.inject_all_exits();
  const auto result = engine.run(100000);
  EXPECT_TRUE(result.converged) << "without MEDs the confed example must settle";
}

TEST(Confed, ModifiedAdvertisementConverges) {
  const auto inst = rfc3345_confederation();
  ConfedEngine engine(inst, ConfedProtocol::kModified);
  engine.inject_all_exits();
  const auto result = engine.run();
  ASSERT_TRUE(result.converged);
  // Everyone able to use r1 settles on it; c3 keeps its own E-BGP route.
  const PathId r1 = inst.exits().find_by_name("r1");
  const PathId r3 = inst.exits().find_by_name("r3");
  EXPECT_EQ(result.final_best[inst.find_node("A")], r1);
  EXPECT_EQ(result.final_best[inst.find_node("B")], r1);
  EXPECT_EQ(result.final_best[inst.find_node("c1")], r1);
  EXPECT_EQ(result.final_best[inst.find_node("c2")], r1);
  EXPECT_EQ(result.final_best[inst.find_node("c3")], r3);
}

TEST(Confed, ModifiedOutcomeIsDelayIndependent) {
  const auto inst = rfc3345_confederation();
  std::set<std::vector<PathId>> outcomes;
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    auto rng = std::make_shared<util::Xoshiro256>(seed);
    ConfedEngine engine(inst, ConfedProtocol::kModified,
                        [rng](NodeId, NodeId, std::uint64_t) -> ConfedEngine::SimTime {
                          return 1 + rng->below(40);
                        });
    for (PathId p = 0; p < inst.exits().size(); ++p) engine.inject_exit(p, rng->below(80));
    const auto result = engine.run();
    ASSERT_TRUE(result.converged) << "seed " << seed;
    outcomes.insert(result.final_best);
  }
  EXPECT_EQ(outcomes.size(), 1u);
}

TEST(Confed, WithdrawalFlushes) {
  const auto inst = rfc3345_confederation();
  const PathId r3 = inst.exits().find_by_name("r3");
  ConfedEngine engine(inst, ConfedProtocol::kModified);
  engine.inject_all_exits(0);
  engine.withdraw_exit(r3, 500);
  const auto result = engine.run();
  ASSERT_TRUE(result.converged);
  // With r3 gone, r2 is no longer MED-eliminated; c2/A prefer it by metric.
  const PathId r2 = inst.exits().find_by_name("r2");
  EXPECT_EQ(result.final_best[inst.find_node("A")], r2);
  EXPECT_EQ(result.final_best[inst.find_node("c3")], r2);
}

TEST(Confed, LoopPreventionStopsConfedPathCycles) {
  // Three sub-ASes in a border triangle; a single route must not circulate.
  netsim::PhysicalGraph physical(3);
  physical.add_link(0, 1, 1);
  physical.add_link(1, 2, 1);
  physical.add_link(0, 2, 1);
  bgp::ExitTable exits;
  bgp::ExitPath p;
  p.name = "r";
  p.exit_point = 0;
  p.next_as = 1;
  p.ebgp_peer = 1001;
  exits.add(p);
  ConfedInstance inst("triangle", std::move(physical), {0, 1, 2},
                      {{0, 1}, {1, 2}, {0, 2}}, std::move(exits));
  ConfedEngine engine(inst, ConfedProtocol::kStandard);
  engine.inject_all_exits();
  const auto result = engine.run(10000);
  ASSERT_TRUE(result.converged);
  for (NodeId v = 0; v < 3; ++v) EXPECT_EQ(result.final_best[v], 0u);
  // A loop-free flood of one route needs only a handful of updates.
  EXPECT_LT(result.updates_sent, 20u);
}

TEST(Confed, RandomConfederationsAreValid) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    RandomConfedConfig config;
    config.sub_ases = 2 + seed % 3;
    config.max_routers = 1 + seed % 3;
    const auto inst = random_confederation(config, seed);
    EXPECT_GT(inst.node_count(), 0u) << seed;
    EXPECT_TRUE(inst.physical().connected()) << seed;
    for (NodeId v = 0; v < inst.node_count(); ++v) {
      EXPECT_FALSE(inst.peers(v).empty()) << seed << " node " << v;
    }
  }
}

TEST(Confed, RandomGeneratorDeterministic) {
  RandomConfedConfig config;
  const auto a = random_confederation(config, 9);
  const auto b = random_confederation(config, 9);
  ASSERT_EQ(a.node_count(), b.node_count());
  for (PathId p = 0; p < a.exits().size(); ++p) {
    EXPECT_TRUE(a.exits()[p] == b.exits()[p]);
  }
}

TEST(Confed, ModifiedSettlesEveryRandomConfederation) {
  // The empirical extension of the paper's theorem: across a random
  // confederation ensemble the Choose^B advertisement always drains, while
  // the standard protocol demonstrably does not (checked by the sibling
  // expectation so the ensemble is known to be oscillation-rich).
  std::size_t standard_failures = 0;
  for (std::uint64_t seed = 1; seed <= 120; ++seed) {
    RandomConfedConfig config;
    config.sub_ases = 2 + seed % 3;
    config.max_routers = 1 + seed % 3;
    config.exits = 3 + seed % 4;
    config.max_med = 1 + static_cast<Med>(seed % 3);
    const auto inst = random_confederation(config, seed);
    {
      ConfedEngine engine(inst, ConfedProtocol::kModified);
      engine.inject_all_exits();
      ASSERT_TRUE(engine.run(300000).converged) << "modified diverged on seed " << seed;
    }
    {
      ConfedEngine engine(inst, ConfedProtocol::kStandard);
      engine.inject_all_exits();
      if (!engine.run(60000).converged) ++standard_failures;
    }
  }
  EXPECT_GT(standard_failures, 0u) << "ensemble too tame to be meaningful";
}

}  // namespace
}  // namespace ibgp::confed
